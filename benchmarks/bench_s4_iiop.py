"""S4 — IIOP interoperability across the three ORB products (§3).

"The use of IIOP allows objects distributed over the Internet, on
different ORBs, to communicate."

Measures: CDR marshalling throughput, GIOP framing overhead (bytes on
the wire per logical payload byte), the full product-pair round-trip
matrix on the in-memory fabric, and the same call over real TCP.
"""

import time

from repro.bench import print_table
from repro.orb import (InMemoryNetwork, InterfaceBuilder, TcpTransport,
                       create_orb, decode_any, encode_any, ORBIX, ORBIXWEB,
                       VISIBROKER)
from repro.orb.giop import RequestMessage, encode_message

ECHO = InterfaceBuilder("Echo").operation("echo", "value").build()


class EchoServant:
    def echo(self, value):
        return value


PAYLOAD = {"rows": [[index, f"name-{index}", index * 1.5, None]
                    for index in range(50)],
           "columns": ["id", "name", "score", "extra"]}


def test_s4_cdr_roundtrip_throughput(benchmark):
    encoded = encode_any(PAYLOAD)
    print_table("S4: CDR encoding of a 50-row result payload",
                ["metric", "value"],
                [["encoded bytes", len(encoded)],
                 ["rows", len(PAYLOAD["rows"])],
                 ["bytes/row", f"{len(encoded) / 50:.1f}"]])
    assert decode_any(encoded) == PAYLOAD

    def kernel():
        return decode_any(encode_any(PAYLOAD))

    benchmark(kernel)


def test_s4_giop_framing_overhead(benchmark):
    body = encode_any(PAYLOAD)
    message = encode_message(RequestMessage(
        request_id=1, object_key=b"orb/Echo/obj1", operation="echo",
        arguments=[PAYLOAD]))
    overhead = len(message) - len(body)
    print_table("S4: GIOP framing overhead",
                ["metric", "bytes"],
                [["CDR payload", len(body)],
                 ["full GIOP request", len(message)],
                 ["framing overhead", overhead]])
    assert overhead < 120  # header + request fields stay small

    def kernel():
        return len(encode_message(RequestMessage(1, b"k", "echo",
                                                 [PAYLOAD])))

    benchmark(kernel)


def test_s4_product_pair_matrix(benchmark):
    """Round-trip latency for each ordered ORB-product pair."""
    network = InMemoryNetwork()
    orbs = {product.name: create_orb(product, network)
            for product in (ORBIX, ORBIXWEB, VISIBROKER)}
    iors = {name: orb.activate(EchoServant(), ECHO)
            for name, orb in orbs.items()}

    rows = []
    for caller_name, caller in orbs.items():
        for target_name, ior in iors.items():
            proxy = caller.proxy(ior, ECHO)
            start = time.perf_counter()
            for __ in range(50):
                proxy.echo(PAYLOAD)
            elapsed = (time.perf_counter() - start) / 50
            rows.append([caller_name, target_name,
                         f"{elapsed * 1e6:.0f}"])
    print_table("S4: IIOP round-trip per ORB product pair (in-memory)",
                ["caller", "target", "us/call"], rows)
    assert len(rows) == 9

    proxy = orbs["Orbix"].proxy(iors["VisiBroker for Java"], ECHO)
    benchmark(lambda: proxy.echo(PAYLOAD))


def test_s4_tcp_vs_inmemory(benchmark):
    """The same GIOP bytes over a real TCP socket."""
    tcp = TcpTransport()
    try:
        server = create_orb(ORBIX, tcp, host="127.0.0.1", port=0)
        client = create_orb(VISIBROKER, tcp, host="127.0.0.1", port=0)
        ior = server.activate(EchoServant(), ECHO)
        proxy = client.proxy(ior, ECHO)

        def timed(proxy_fn, repeats=30):
            best = float("inf")
            for __ in range(3):  # min-of-3: sockets vs memory is a
                start = time.perf_counter()  # systematic effect
                for ___ in range(repeats):
                    proxy_fn()
                best = min(best, (time.perf_counter() - start) / repeats)
            return best

        tcp_latency = timed(lambda: proxy.echo(PAYLOAD))

        network = InMemoryNetwork()
        mem_server = create_orb(ORBIX, network)
        mem_client = create_orb(VISIBROKER, network)
        mem_proxy = mem_client.proxy(
            mem_server.activate(EchoServant(), ECHO), ECHO)
        mem_latency = timed(lambda: mem_proxy.echo(PAYLOAD))

        print_table("S4: transport comparison (same GIOP encoding)",
                    ["transport", "us/call"],
                    [["in-memory", f"{mem_latency * 1e6:.0f}"],
                     ["TCP loopback", f"{tcp_latency * 1e6:.0f}"]])
        assert tcp_latency > mem_latency  # sockets cost real time

        benchmark(lambda: proxy.echo("ping"))
    finally:
        tcp.close()
