"""S4 — IIOP interoperability across the three ORB products (§3).

"The use of IIOP allows objects distributed over the Internet, on
different ORBs, to communicate."

Measures: CDR marshalling throughput, GIOP framing overhead (bytes on
the wire per logical payload byte), the full product-pair round-trip
matrix on the in-memory fabric, and the same call over real TCP.
"""

import time

from repro.bench import print_table
from repro.orb import (InMemoryNetwork, InterfaceBuilder, TcpTransport,
                       create_orb, decode_any, encode_any, ORBIX, ORBIXWEB,
                       VISIBROKER)
from repro.orb.giop import RequestMessage, encode_message

ECHO = InterfaceBuilder("Echo").operation("echo", "value").build()


class EchoServant:
    def echo(self, value):
        return value


PAYLOAD = {"rows": [[index, f"name-{index}", index * 1.5, None]
                    for index in range(50)],
           "columns": ["id", "name", "score", "extra"]}


def test_s4_cdr_roundtrip_throughput(benchmark):
    encoded = encode_any(PAYLOAD)
    print_table("S4: CDR encoding of a 50-row result payload",
                ["metric", "value"],
                [["encoded bytes", len(encoded)],
                 ["rows", len(PAYLOAD["rows"])],
                 ["bytes/row", f"{len(encoded) / 50:.1f}"]])
    assert decode_any(encoded) == PAYLOAD

    def kernel():
        return decode_any(encode_any(PAYLOAD))

    benchmark(kernel)


def test_s4_giop_framing_overhead(benchmark):
    body = encode_any(PAYLOAD)
    message = encode_message(RequestMessage(
        request_id=1, object_key=b"orb/Echo/obj1", operation="echo",
        arguments=[PAYLOAD]))
    overhead = len(message) - len(body)
    print_table("S4: GIOP framing overhead",
                ["metric", "bytes"],
                [["CDR payload", len(body)],
                 ["full GIOP request", len(message)],
                 ["framing overhead", overhead]])
    assert overhead < 120  # header + request fields stay small

    def kernel():
        return len(encode_message(RequestMessage(1, b"k", "echo",
                                                 [PAYLOAD])))

    benchmark(kernel)


def test_s4_product_pair_matrix(benchmark):
    """Round-trip latency for each ordered ORB-product pair."""
    network = InMemoryNetwork()
    orbs = {product.name: create_orb(product, network)
            for product in (ORBIX, ORBIXWEB, VISIBROKER)}
    iors = {name: orb.activate(EchoServant(), ECHO)
            for name, orb in orbs.items()}

    rows = []
    for caller_name, caller in orbs.items():
        for target_name, ior in iors.items():
            proxy = caller.proxy(ior, ECHO)
            start = time.perf_counter()
            for __ in range(50):
                proxy.echo(PAYLOAD)
            elapsed = (time.perf_counter() - start) / 50
            rows.append([caller_name, target_name,
                         f"{elapsed * 1e6:.0f}"])
    print_table("S4: IIOP round-trip per ORB product pair (in-memory)",
                ["caller", "target", "us/call"], rows)
    assert len(rows) == 9

    proxy = orbs["Orbix"].proxy(iors["VisiBroker for Java"], ECHO)
    benchmark(lambda: proxy.echo(PAYLOAD))


def test_s4_tcp_vs_inmemory(benchmark):
    """The same GIOP bytes over a real TCP socket, pooled and not.

    Uses a tiny payload so the transport cost is what gets measured —
    with a large one, CDR marshalling (identical on every transport)
    dominates and the comparison drowns in noise."""

    def timed(proxy_fn, repeats=30):
        best = float("inf")
        for __ in range(3):  # min-of-3: sockets vs memory is a
            start = time.perf_counter()  # systematic effect
            for ___ in range(repeats):
                proxy_fn()
            best = min(best, (time.perf_counter() - start) / repeats)
        return best

    def tcp_latency(pooled):
        transport = TcpTransport(pooled=pooled)
        try:
            server = create_orb(ORBIX, transport, host="127.0.0.1", port=0)
            client = create_orb(VISIBROKER, transport, host="127.0.0.1",
                                port=0)
            proxy = client.proxy(server.activate(EchoServant(), ECHO), ECHO)
            return timed(lambda: proxy.echo("ping"))
        finally:
            transport.close()

    percall_latency = tcp_latency(pooled=False)
    pooled_latency = tcp_latency(pooled=True)

    network = InMemoryNetwork()
    mem_server = create_orb(ORBIX, network)
    mem_client = create_orb(VISIBROKER, network)
    mem_proxy = mem_client.proxy(
        mem_server.activate(EchoServant(), ECHO), ECHO)
    mem_latency = timed(lambda: mem_proxy.echo("ping"))

    print_table("S4: transport comparison (same GIOP encoding)",
                ["transport", "us/call"],
                [["in-memory", f"{mem_latency * 1e6:.0f}"],
                 ["TCP loopback, per-call", f"{percall_latency * 1e6:.0f}"],
                 ["TCP loopback, pooled", f"{pooled_latency * 1e6:.0f}"]])
    # The connect/teardown handshake costs real time; keep-alive
    # pooling recovers most of it (on loopback, nearly all of it).
    assert percall_latency > mem_latency
    assert pooled_latency < percall_latency

    pooled = TcpTransport(pooled=True)
    try:
        server = create_orb(ORBIX, pooled, host="127.0.0.1", port=0)
        client = create_orb(VISIBROKER, pooled, host="127.0.0.1", port=0)
        proxy = client.proxy(server.activate(EchoServant(), ECHO), ECHO)
        benchmark(lambda: proxy.echo("ping"))
    finally:
        pooled.close()


def test_s4_pooled_vs_percall_connections(benchmark):
    """Keep-alive IIOP: a pooled transport amortises the TCP handshake
    over many requests, where per-call mode pays it every time.  Counters
    prove the reuse; the latency table shows what it buys."""

    def timed(proxy_fn, repeats=30):
        best = float("inf")
        for __ in range(3):  # min-of-3 against scheduler noise
            start = time.perf_counter()
            for ___ in range(repeats):
                proxy_fn()
            best = min(best, (time.perf_counter() - start) / repeats)
        return best

    results = {}
    for label, pooled in (("per-call", False), ("pooled", True)):
        transport = TcpTransport(pooled=pooled)
        try:
            server = create_orb(ORBIX, transport, host="127.0.0.1", port=0)
            client = create_orb(VISIBROKER, transport, host="127.0.0.1",
                                port=0)
            proxy = client.proxy(server.activate(EchoServant(), ECHO), ECHO)
            proxy.echo("warm")
            transport.metrics.reset()
            # Small payload: the handshake saving is the effect under
            # test, and large-payload marshalling noise would bury it.
            latency = timed(lambda: proxy.echo("ping"))
            results[label] = {
                "us_per_call": latency * 1e6,
                "opened": transport.metrics.connections_opened,
                "reused": transport.metrics.connections_reused,
            }
        finally:
            transport.close()

    print_table("S4: pooled keep-alive vs per-call connections (TCP)",
                ["mode", "us/call", "conns opened", "conns reused"],
                [[label, f"{point['us_per_call']:.0f}",
                  point["opened"], point["reused"]]
                 for label, point in results.items()])
    # Per-call opens one socket per request; pooled opens none after
    # warm-up and reuses one socket for every request.
    assert results["per-call"]["opened"] >= 90
    assert results["per-call"]["reused"] == 0
    assert results["pooled"]["opened"] == 0
    assert results["pooled"]["reused"] >= 90
    assert results["pooled"]["us_per_call"] < \
        results["per-call"]["us_per_call"]

    transport = TcpTransport(pooled=True)
    try:
        server = create_orb(ORBIX, transport, host="127.0.0.1", port=0)
        client = create_orb(VISIBROKER, transport, host="127.0.0.1", port=0)
        proxy = client.proxy(server.activate(EchoServant(), ECHO), ECHO)
        benchmark(lambda: proxy.echo(PAYLOAD))
    finally:
        transport.close()
