"""S9b — the event-loop transport under a client storm.

The ROADMAP's event-loop item, measured: the same hot-co-database
scenario as ``bench_s9_pipelining.py`` (every client fires a depth-0
discovery — three sequential metadata calls — at one endpoint the
moment the barrier drops, over a modelled one-way WAN latency), run
against the selector-loop transport whose entire server side is **one
loop thread plus a bounded worker pool**.

Three regimes, reported honestly:

* **low concurrency** (8 clients) — the loop's extra hops (submit ->
  loop -> worker -> loop -> flush) are pure overhead when a handful of
  threads would have done; if threaded wins here, that is the expected
  cost of the architecture and is recorded, not gated.
* **hot endpoint** (96 clients) — the acceptance gate: event-loop
  wall-clock at-or-better than the threaded pipelined transport.
  Threaded mode burns its worker pool sleeping out the modelled
  latency; the loop parks delayed replies on its timer heap, so its
  six workers only ever do real dispatch work.
* **storm** (1000 clients) — loop only (the threaded transport would
  need hundreds of threads): completeness 1.00 with the server side
  bounded at <= 8 OS threads.

Results persist to ``BENCH_eventloop.json``.
"""

import json
import threading
import time
from pathlib import Path

from repro.bench import print_table
from repro.core.discovery import CoDatabaseClient, DiscoveryEngine
from repro.core.codatabase import CODATABASE_INTERFACE, CoDatabaseServant
from repro.core.model import SourceDescription
from repro.core.registry import Registry
from repro.orb import ORBIX, TcpTransport, create_orb

TOPIC = "astronomy catalogues"
HOT_DB = "sky_survey_main"
LATENCY = 0.005           # modelled one-way WAN delay, seconds
LOW_CLIENTS = 8
HOT_CLIENTS = 96          # the at-or-better comparison point
STORM_CLIENTS = 1000      # loop-only storm
STRIPES = 8
PIPELINE_DEPTH = 256
LOOP_WORKERS = 6          # 1 loop + 6 workers = 7 <= 8 thread bound
MAX_SERVER_THREADS = 8
TIMEOUT = 60.0            # generous: 3000 GIL-bound replies take a while
#: Tolerance on the at-or-better gate: one run each on a shared,
#: single-CPU box jitters a few percent either way.
HOT_TOLERANCE = 1.10


def _registry():
    registry = Registry()
    registry.create_coalition("Sky Survey", TOPIC)
    registry.add_source(SourceDescription(name=HOT_DB,
                                          information_type=TOPIC))
    registry.join(HOT_DB, "Sky Survey")
    return registry


def _run_config(transport, clients):
    """All *clients* fire one discovery at the hot co-database at
    once; returns (wall_clock_s, completeness, thread_peak, metrics)."""
    registry = _registry()
    orb = create_orb(ORBIX, transport, host="127.0.0.1", port=0)
    try:
        ior = orb.activate(CoDatabaseServant(registry.codatabase(HOT_DB)),
                           CODATABASE_INTERFACE, object_name="codb-hot")

        def resolver(name):
            return CoDatabaseClient.for_proxy(
                orb.proxy(ior, CODATABASE_INTERFACE), name)

        barrier = threading.Barrier(clients)
        complete = []
        failures = []
        thread_peak = [0]

        def client(index):
            engine = DiscoveryEngine(resolver)
            barrier.wait()
            try:
                result = engine.discover(TOPIC, HOT_DB)
                complete.append(
                    result.resolved
                    and any(lead.name == "Sky Survey"
                            for lead in result.leads))
            except Exception as exc:  # noqa: BLE001 - counted below
                failures.append(exc)
            if index == 0:
                thread_peak[0] = transport.server_thread_count()

        threads = [threading.Thread(target=client, args=(index,))
                   for index in range(clients)]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
        completeness = (sum(complete) / clients) if not failures else 0.0
        snapshot = transport.metrics.snapshot()
        return elapsed, completeness, thread_peak[0], snapshot
    finally:
        transport.close()


def _threaded_transport():
    return TcpTransport(pipelined=True, stripes=STRIPES,
                        pipeline_depth=PIPELINE_DEPTH, latency=LATENCY,
                        timeout=TIMEOUT, loop=False)


def _loop_transport():
    return TcpTransport(pipelined=True, stripes=STRIPES,
                        pipeline_depth=PIPELINE_DEPTH, latency=LATENCY,
                        timeout=TIMEOUT, loop=True,
                        loop_workers=LOOP_WORKERS)


def _comparison_point(clients):
    threaded_s, threaded_complete, __, threaded_metrics = _run_config(
        _threaded_transport(), clients)
    loop_s, loop_complete, loop_threads, loop_metrics = _run_config(
        _loop_transport(), clients)
    return {
        "clients": clients,
        "calls": clients * 3,
        "threaded_ms": round(threaded_s * 1e3, 1),
        "eventloop_ms": round(loop_s * 1e3, 1),
        "speedup": round(threaded_s / loop_s, 2),
        "threaded_completeness": round(threaded_complete, 2),
        "eventloop_completeness": round(loop_complete, 2),
        "eventloop_server_threads": loop_threads,
        "eventloop_metrics": {key: loop_metrics[key] for key in (
            "connections_opened", "requests_pipelined", "max_in_flight",
            "pipeline_stalls", "batch_flushes", "frames_batched")},
        "threaded_metrics": {key: threaded_metrics[key] for key in (
            "connections_opened", "requests_pipelined", "max_in_flight",
            "pipeline_stalls")},
    }


def test_s9_eventloop_storm(benchmark):
    low = _comparison_point(LOW_CLIENTS)
    hot = _comparison_point(HOT_CLIENTS)

    storm_s, storm_complete, storm_threads, storm_metrics = _run_config(
        _loop_transport(), STORM_CLIENTS)
    storm = {
        "clients": STORM_CLIENTS,
        "calls": STORM_CLIENTS * 3,
        "eventloop_ms": round(storm_s * 1e3, 1),
        "eventloop_completeness": round(storm_complete, 2),
        "eventloop_server_threads": storm_threads,
        "eventloop_metrics": {key: storm_metrics[key] for key in (
            "connections_opened", "requests_pipelined", "max_in_flight",
            "pipeline_stalls", "pipeline_overflows", "batch_flushes",
            "frames_batched")},
    }

    rows = [[point["clients"], point["calls"],
             f"{point.get('threaded_ms', float('nan')):.0f}"
             if "threaded_ms" in point else "-",
             f"{point['eventloop_ms']:.0f}",
             f"{point['speedup']:.2f}x" if "speedup" in point else "-",
             point["eventloop_server_threads"],
             f"{point['eventloop_completeness']:.2f}"]
            for point in (low, hot, storm)]
    print_table(
        f"S9b: event-loop vs threaded pipelined transport "
        f"(stripes={STRIPES}, latency={LATENCY * 1e3:.0f}ms one-way, "
        f"loop={LOOP_WORKERS} workers)",
        ["clients", "calls", "threaded ms", "loop ms", "speedup",
         "srv threads", "completeness"], rows)

    # Correctness everywhere: nobody lost or cross-wired a reply.
    for point in (low, hot):
        assert point["threaded_completeness"] == 1.0
        assert point["eventloop_completeness"] == 1.0
        assert point["eventloop_metrics"]["pipeline_stalls"] == 0
    assert storm["eventloop_completeness"] == 1.0
    assert storm["eventloop_metrics"]["pipeline_stalls"] == 0

    # The architectural bound: a 1000-client storm is served by the
    # loop plus its worker pool — a fixed handful of OS threads.
    assert storm["eventloop_server_threads"] <= MAX_SERVER_THREADS

    # Acceptance gate: at the hot-endpoint point the event loop is
    # at-or-better than threaded pipelining (within run jitter).
    assert hot["eventloop_ms"] <= hot["threaded_ms"] * HOT_TOLERANCE, \
        (f"event loop {hot['eventloop_ms']}ms worse than threaded "
         f"{hot['threaded_ms']}ms at {HOT_CLIENTS} clients")

    out = {
        "benchmark": "S9b event loop: hot co-database client storm",
        "scenario": {
            "topic": TOPIC,
            "latency_ms_one_way": LATENCY * 1e3,
            "stripes": STRIPES,
            "pipeline_depth": PIPELINE_DEPTH,
            "loop_workers": LOOP_WORKERS,
            "max_server_threads": MAX_SERVER_THREADS,
            "hot_clients": HOT_CLIENTS,
            "storm_clients": STORM_CLIENTS,
            "hot_tolerance": HOT_TOLERANCE,
        },
        "low_concurrency": low,
        "hot_endpoint": hot,
        "storm": storm,
        "notes": (
            "low_concurrency is reported without a gate: with a "
            "handful of clients the loop's submit->loop->worker->loop "
            "hops are pure overhead versus direct threaded I/O, and "
            "threaded mode may win that regime. The loop's payoff is "
            "the storm: bounded threads and timer-heap latency "
            "instead of workers sleeping out the WAN delay."),
    }
    path = Path(__file__).resolve().parents[1] / "BENCH_eventloop.json"
    path.write_text(json.dumps(out, indent=2) + "\n")

    benchmark(lambda: storm["eventloop_completeness"])
