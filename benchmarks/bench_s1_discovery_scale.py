"""S1 — Scalability of discovery: coalition routing vs flat broadcast.

The paper's central architectural claim (§1/§2): topic-based
organization lets discovery scale, where a flat information space
forces every query to contact every source.  We sweep the federation
size and compare the number of metadata contacts per query.

Expected shape: WebFINDIT's contacts stay (roughly) flat as N grows —
bounded by coalition size and link fan-out — while broadcast grows
linearly; the gap widens with N.
"""

from repro.bench import (build_scaled_space, discovery_workload, print_table,
                         ratio)

SIZES = (56, 112, 224, 448)
COALITION_SIZE = 8
QUERIES = 24


def _run_point(databases: int):
    space = build_scaled_space(databases=databases,
                               coalitions=databases // COALITION_SIZE)
    engine = space.discovery_engine()
    workload = discovery_workload(space, QUERIES, seed=17)
    total_codbs = 0
    total_calls = 0
    resolved = 0
    for query in workload:
        result = engine.discover(query.text, query.start_database,
                                 max_hops=12)
        total_codbs += result.codatabases_contacted
        total_calls += result.metadata_calls
        resolved += 1 if result.resolved else 0
    broadcast_contacts = 0
    for query in workload:
        broadcast_contacts += space.broadcast.discover(
            query.text).sources_contacted
    return {
        "databases": databases,
        "webfindit_codbs": total_codbs / QUERIES,
        "webfindit_calls": total_calls / QUERIES,
        "broadcast_contacts": broadcast_contacts / QUERIES,
        "resolved": resolved,
    }


def test_s1_discovery_vs_broadcast(benchmark):
    points = [_run_point(size) for size in SIZES]

    rows = []
    for point in points:
        rows.append([
            point["databases"],
            f"{point['webfindit_codbs']:.1f}",
            f"{point['broadcast_contacts']:.0f}",
            f"{ratio(point['broadcast_contacts'], point['webfindit_codbs']):.1f}x",
            f"{point['resolved']}/{QUERIES}",
        ])
    print_table(
        "S1: metadata contacts per discovery query vs federation size",
        ["N databases", "WebFINDIT codbs", "broadcast contacts",
         "advantage", "resolved"], rows)

    # Shape assertions: broadcast is linear in N; WebFINDIT grows far
    # slower, so the advantage widens monotonically.
    assert points[-1]["broadcast_contacts"] == SIZES[-1]
    advantages = [ratio(p["broadcast_contacts"], p["webfindit_codbs"])
                  for p in points]
    assert advantages[-1] > advantages[0]
    assert all(p["resolved"] == QUERIES for p in points)
    # WebFINDIT sublinear: an 8x federation must grow contacts well
    # below 8x (the growth that remains tracks coalition count, not N).
    growth = points[-1]["webfindit_codbs"] / points[0]["webfindit_codbs"]
    assert growth < (SIZES[-1] / SIZES[0]) * 0.75

    space = build_scaled_space(databases=SIZES[1],
                               coalitions=SIZES[1] // COALITION_SIZE)
    engine = space.discovery_engine()
    query = discovery_workload(space, 1, seed=5)[0]

    def kernel():
        return engine.discover(query.text, query.start_database,
                               max_hops=12).resolved

    assert benchmark(kernel)


def test_s1_miss_queries_bounded(benchmark):
    """Even unresolvable topics terminate within the hop bound instead
    of flooding the federation."""
    space = build_scaled_space(databases=112, coalitions=14)
    engine = space.discovery_engine()
    result = engine.discover("completely unknown topic",
                             space.database_names[0], max_hops=3)
    print_table("S1: miss-query cost (max_hops=3)",
                ["metric", "value"],
                [["codbs contacted", result.codatabases_contacted],
                 ["metadata calls", result.metadata_calls],
                 ["resolved", result.resolved]])
    assert not result.resolved
    assert result.codatabases_contacted < len(space.database_names)

    def kernel():
        return engine.discover("completely unknown topic",
                               space.database_names[0],
                               max_hops=3).codatabases_contacted

    benchmark(kernel)


def test_s1_middleware_level_traffic(benchmark):
    """The same comparison at the GIOP level: a fully deployed scaled
    federation where every metadata call really crosses the ORB.
    Broadcast would need at least one GIOP round-trip per source."""
    from repro.bench import build_scaled_system

    N = 48
    system = build_scaled_system(databases=N, coalitions=8)
    queries = []
    for index in range(8):
        topic = system.registry.coalition(
            system.registry.coalition_names()[index % 8]).information_type
        queries.append((topic, f"db{(index * 5) % N:05d}"))

    processor = system.query_processor()
    total_messages = 0
    for topic, start in queries:
        # warm stub/IOR caches so the steady state is measured
        processor.discovery.discover(topic, start)
    system.reset_metrics()
    for topic, start in queries:
        result = processor.discovery.discover(topic, start)
        assert result.resolved
    total_messages = system.metrics()["giop_messages"]

    per_query = total_messages / len(queries)
    print_table(
        "S1b: GIOP messages per discovery (deployed, 48 sources)",
        ["approach", "giop msgs/query"],
        [["WebFINDIT (measured)", f"{per_query:.1f}"],
         ["broadcast (>= 1/source)", N]])
    assert per_query < N  # beats broadcast at the wire level too

    topic, start = queries[0]
    benchmark(lambda: processor.discovery.discover(topic, start).resolved)
