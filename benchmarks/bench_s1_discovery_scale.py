"""S1 — Scalability of discovery: coalition routing vs flat broadcast.

The paper's central architectural claim (§1/§2): topic-based
organization lets discovery scale, where a flat information space
forces every query to contact every source.  We sweep the federation
size and compare the number of metadata contacts per query.

Expected shape: WebFINDIT's contacts stay (roughly) flat as N grows —
bounded by coalition size and link fan-out — while broadcast grows
linearly; the gap widens with N.
"""

import json
import time
from pathlib import Path

from repro.bench import (build_scaled_space, discovery_workload, print_table,
                         ratio)

SIZES = (56, 112, 224, 448)
COALITION_SIZE = 8
QUERIES = 24


def _run_point(databases: int):
    space = build_scaled_space(databases=databases,
                               coalitions=databases // COALITION_SIZE)
    engine = space.discovery_engine()
    workload = discovery_workload(space, QUERIES, seed=17)
    total_codbs = 0
    total_calls = 0
    resolved = 0
    for query in workload:
        result = engine.discover(query.text, query.start_database,
                                 max_hops=12)
        total_codbs += result.codatabases_contacted
        total_calls += result.metadata_calls
        resolved += 1 if result.resolved else 0
    broadcast_contacts = 0
    for query in workload:
        broadcast_contacts += space.broadcast.discover(
            query.text).sources_contacted
    return {
        "databases": databases,
        "webfindit_codbs": total_codbs / QUERIES,
        "webfindit_calls": total_calls / QUERIES,
        "broadcast_contacts": broadcast_contacts / QUERIES,
        "resolved": resolved,
    }


def test_s1_discovery_vs_broadcast(benchmark):
    points = [_run_point(size) for size in SIZES]

    rows = []
    for point in points:
        rows.append([
            point["databases"],
            f"{point['webfindit_codbs']:.1f}",
            f"{point['broadcast_contacts']:.0f}",
            f"{ratio(point['broadcast_contacts'], point['webfindit_codbs']):.1f}x",
            f"{point['resolved']}/{QUERIES}",
        ])
    print_table(
        "S1: metadata contacts per discovery query vs federation size",
        ["N databases", "WebFINDIT codbs", "broadcast contacts",
         "advantage", "resolved"], rows)

    # Shape assertions: broadcast is linear in N; WebFINDIT grows far
    # slower, so the advantage widens monotonically.
    assert points[-1]["broadcast_contacts"] == SIZES[-1]
    advantages = [ratio(p["broadcast_contacts"], p["webfindit_codbs"])
                  for p in points]
    assert advantages[-1] > advantages[0]
    assert all(p["resolved"] == QUERIES for p in points)
    # WebFINDIT sublinear: an 8x federation must grow contacts well
    # below 8x (the growth that remains tracks coalition count, not N).
    growth = points[-1]["webfindit_codbs"] / points[0]["webfindit_codbs"]
    assert growth < (SIZES[-1] / SIZES[0]) * 0.75

    space = build_scaled_space(databases=SIZES[1],
                               coalitions=SIZES[1] // COALITION_SIZE)
    engine = space.discovery_engine()
    query = discovery_workload(space, 1, seed=5)[0]

    def kernel():
        return engine.discover(query.text, query.start_database,
                               max_hops=12).resolved

    assert benchmark(kernel)


def test_s1_miss_queries_bounded(benchmark):
    """Even unresolvable topics terminate within the hop bound instead
    of flooding the federation."""
    space = build_scaled_space(databases=112, coalitions=14)
    engine = space.discovery_engine()
    result = engine.discover("completely unknown topic",
                             space.database_names[0], max_hops=3)
    print_table("S1: miss-query cost (max_hops=3)",
                ["metric", "value"],
                [["codbs contacted", result.codatabases_contacted],
                 ["metadata calls", result.metadata_calls],
                 ["resolved", result.resolved]])
    assert not result.resolved
    assert result.codatabases_contacted < len(space.database_names)

    def kernel():
        return engine.discover("completely unknown topic",
                               space.database_names[0],
                               max_hops=3).codatabases_contacted

    benchmark(kernel)


def test_s1_middleware_level_traffic(benchmark):
    """The same comparison at the GIOP level: a fully deployed scaled
    federation where every metadata call really crosses the ORB.
    Broadcast would need at least one GIOP round-trip per source."""
    from repro.bench import build_scaled_system

    N = 48
    system = build_scaled_system(databases=N, coalitions=8)
    queries = []
    for index in range(8):
        topic = system.registry.coalition(
            system.registry.coalition_names()[index % 8]).information_type
        queries.append((topic, f"db{(index * 5) % N:05d}"))

    processor = system.query_processor()
    total_messages = 0
    for topic, start in queries:
        # warm stub/IOR caches so the steady state is measured
        processor.discovery.discover(topic, start)
    system.reset_metrics()
    for topic, start in queries:
        result = processor.discovery.discover(topic, start)
        assert result.resolved
    total_messages = system.metrics()["giop_messages"]

    per_query = total_messages / len(queries)
    print_table(
        "S1b: GIOP messages per discovery (deployed, 48 sources)",
        ["approach", "giop msgs/query"],
        [["WebFINDIT (measured)", f"{per_query:.1f}"],
         ["broadcast (>= 1/source)", N]])
    assert per_query < N  # beats broadcast at the wire level too

    topic, start = queries[0]
    benchmark(lambda: processor.discovery.discover(topic, start).resolved)


# ---------------------------------------------------------------------------
# S1c: wall-clock with parallel fan-out + pooled IIOP over real TCP
# ---------------------------------------------------------------------------

WALLCLOCK_N = 48
WALLCLOCK_COALITIONS = 6
#: Modelled per-hop network latency (2 ms).  On pure loopback every
#: metadata call is CPU-bound Python, so the GIL serialises the workers
#: and fan-out cannot win; with any real RTT the workers overlap their
#: waits, which is exactly the Internet deployment the paper targets.
WALLCLOCK_LATENCY = 0.002


def _wallclock_queries(system):
    """Cross-coalition queries: start three coalitions away from the
    target topic so every discovery is a genuine multi-hop BFS with a
    frontier wide enough to fan out."""
    names = system.registry.coalition_names()
    queries = []
    for index in range(12):
        target = names[index % WALLCLOCK_COALITIONS]
        topic = system.registry.coalition(target).information_type
        start_coalition = (index + 3) % WALLCLOCK_COALITIONS
        start = f"db{start_coalition + WALLCLOCK_COALITIONS * (index % 8):05d}"
        queries.append((topic, start))
    return queries


def _run_wallclock_config(pooled: bool, parallel: bool, metadata_cache=None):
    """Deploy the federation on real TCP and time the query workload.

    Returns per-query wall-clock, GIOP message count, lead fingerprints
    (for the identical-results assertion), and cache/connection stats.
    """
    from repro.bench import build_scaled_system
    from repro.orb import TcpTransport

    transport = TcpTransport(pooled=pooled, latency=WALLCLOCK_LATENCY)
    try:
        system = build_scaled_system(
            databases=WALLCLOCK_N, coalitions=WALLCLOCK_COALITIONS,
            transport=transport, metadata_cache=metadata_cache,
            parallel_discovery=parallel)
        queries = _wallclock_queries(system)
        processor = system.query_processor()
        try:
            for topic, start in queries:  # warm IOR/stub caches
                processor.discovery.discover(topic, start, max_hops=12)
            system.reset_metrics()
            if metadata_cache is not None:
                metadata_cache.clear()
            leads = []
            begin = time.perf_counter()
            for topic, start in queries:
                result = processor.discovery.discover(topic, start,
                                                      max_hops=12)
                assert result.resolved
                leads.append([(lead.name, lead.score, lead.via)
                              for lead in result.leads])
            elapsed = time.perf_counter() - begin
            cold_msgs = system.metrics()["giop_messages"]
            warm = None
            if metadata_cache is not None:
                system.reset_metrics()
                hits = misses = 0
                warm_begin = time.perf_counter()
                for topic, start in queries:
                    result = processor.discovery.discover(topic, start,
                                                          max_hops=12)
                    hits += result.cache_hits
                    misses += result.cache_misses
                warm_elapsed = time.perf_counter() - warm_begin
                warm = {
                    "ms_per_query": warm_elapsed / len(queries) * 1e3,
                    "giop_messages": system.metrics()["giop_messages"],
                    "cache_hits": hits,
                    "cache_misses": misses,
                }
            return {
                "pooled": pooled,
                "parallel": parallel,
                "ms_per_query": elapsed / len(queries) * 1e3,
                "giop_messages": cold_msgs,
                "connections_opened": transport.metrics.connections_opened,
                "connections_reused": transport.metrics.connections_reused,
                "leads": leads,
                "warm": warm,
            }
        finally:
            processor.discovery.close()
    finally:
        transport.close()


def test_s1_parallel_pooled_wallclock(benchmark):
    """The perf claim behind the fan-out/pooling work: on a deployed
    48-source federation with Internet-like latency, parallel frontier
    consultation over pooled keep-alive IIOP connections beats the
    sequential per-call-connection baseline by >= 2x wall-clock while
    producing byte-identical leads and identical GIOP traffic."""
    from repro.core.metacache import MetadataCache

    configs = {
        "seq/per-call": _run_wallclock_config(pooled=False, parallel=False),
        "seq/pooled": _run_wallclock_config(pooled=True, parallel=False),
        "par/per-call": _run_wallclock_config(pooled=False, parallel=True),
        "par/pooled": _run_wallclock_config(pooled=True, parallel=True),
    }
    cached = _run_wallclock_config(pooled=True, parallel=True,
                                   metadata_cache=MetadataCache())

    baseline = configs["seq/per-call"]
    rows = []
    for label, point in configs.items():
        rows.append([label, f"{point['ms_per_query']:.2f}",
                     point["giop_messages"],
                     point["connections_opened"],
                     point["connections_reused"],
                     f"{baseline['ms_per_query'] / point['ms_per_query']:.2f}x"])
    print_table(
        f"S1c: wall-clock per discovery ({WALLCLOCK_N} sources on TCP, "
        f"{WALLCLOCK_LATENCY * 1e3:.0f} ms link latency)",
        ["config", "ms/query", "giop msgs", "conns opened",
         "conns reused", "speedup"], rows)
    print_table(
        "S1c: + co-database metadata cache (par/pooled, second pass)",
        ["metric", "value"],
        [["cold ms/query", f"{cached['ms_per_query']:.2f}"],
         ["warm ms/query", f"{cached['warm']['ms_per_query']:.2f}"],
         ["cold giop msgs", cached["giop_messages"]],
         ["warm giop msgs", cached["warm"]["giop_messages"]],
         ["warm cache hits", cached["warm"]["cache_hits"]],
         ["warm cache misses", cached["warm"]["cache_misses"]]])

    # Correctness: every configuration produced byte-identical leads and
    # the same number of GIOP messages — parallelism and pooling change
    # the schedule, never the answer or the traffic.
    for label, point in configs.items():
        assert point["leads"] == baseline["leads"], label
        assert point["giop_messages"] == baseline["giop_messages"], label
    assert cached["leads"] == baseline["leads"]

    # Pooling actually reuses connections; per-call mode never does.
    assert configs["par/pooled"]["connections_reused"] > 0
    assert configs["seq/per-call"]["connections_reused"] == 0

    # The headline acceptance: >= 2x lower wall-clock.
    speedup = baseline["ms_per_query"] / configs["par/pooled"]["ms_per_query"]
    assert speedup >= 2.0, f"only {speedup:.2f}x"

    # The cache removes GIOP traffic on the warm pass, visibly.
    assert cached["warm"]["giop_messages"] < cached["giop_messages"]
    assert cached["warm"]["cache_hits"] > 0

    out = {
        "benchmark": "S1c parallel discovery fan-out + pooled IIOP",
        "topology": {"databases": WALLCLOCK_N,
                     "coalitions": WALLCLOCK_COALITIONS,
                     "queries": 12,
                     "link_latency_ms": WALLCLOCK_LATENCY * 1e3},
        "configs": {label: {k: v for k, v in point.items() if k != "leads"}
                    for label, point in configs.items()},
        "cache": {k: v for k, v in cached.items() if k != "leads"},
        "speedup_par_pooled_vs_seq_percall": round(speedup, 2),
        "identical_leads_across_configs": True,
    }
    path = Path(__file__).resolve().parents[1] / "BENCH_discovery.json"
    path.write_text(json.dumps(out, indent=2) + "\n")

    benchmark(lambda: speedup)
