"""F6 — Figure 6: querying actual data on RBH.

Regenerates the Figure-6 result grid (``select * from medical
students``), verifies the §2.3 Funding() SQL translation verbatim, and
runs the same WebTassili access pattern against all three relational
dialects to show dialect transparency.
"""

from repro.apps.healthcare import topology as topo
from repro.apps.healthcare.data import (AIDS_PROJECT_FUNDING,
                                        AIDS_PROJECT_TITLE)
from repro.bench import print_table, sql_workload


def test_fig6_medical_students_grid(benchmark, healthcare):
    browser = healthcare.browser(topo.QUT)
    result = browser.fetch(topo.RBH, "SELECT * FROM MedicalStudent")

    print()
    print(result.text, flush=True)
    assert result.data.columns == ["StudentId", "Name", "Course", "Year"]
    assert result.data.rowcount == 12

    def kernel():
        return browser.fetch(topo.RBH,
                             "SELECT * FROM MedicalStudent").data.rowcount

    assert benchmark(kernel) == 12


def test_fig6_funding_translation(benchmark, healthcare):
    wrapper = healthcare.system.local_wrapper(topo.RBH)
    sql = wrapper.generate_sql("ResearchProjects", "Funding",
                               [AIDS_PROJECT_TITLE])
    paper_sql = ("SELECT a.Funding FROM ResearchProjects a "
                 "WHERE a.Title = 'AIDS and drugs'")
    print_table("F6: WebTassili -> SQL translation",
                ["source", "sql"],
                [["paper (§2.3)", paper_sql], ["measured", sql]])
    assert sql == paper_sql

    browser = healthcare.browser(topo.QUT)
    value = browser.invoke(topo.RBH, "ResearchProjects", "Funding",
                           AIDS_PROJECT_TITLE).data
    assert value == AIDS_PROJECT_FUNDING

    def kernel():
        return browser.invoke(topo.RBH, "ResearchProjects", "Funding",
                              AIDS_PROJECT_TITLE).data

    benchmark(kernel)


def test_fig6_dialect_transparency(benchmark, healthcare):
    """The same exported-function access pattern against Oracle, mSQL
    and DB2 sources — the JDBC-style uniformity JDBC bought the paper."""
    browser = healthcare.browser(topo.QUT)
    invocations = [
        ("Oracle", topo.RBH, "ResearchProjects", "Funding",
         [AIDS_PROJECT_TITLE]),
        ("mSQL", topo.SGF, "Funding", "ProgramBudget",
         ["Rural Clinics"]),
        ("DB2", topo.QUT, "Surveys", "SurveyLead",
         ["Health in Queensland"]),
    ]
    rows = []
    for dialect, database, type_name, function, args in invocations:
        value = browser.invoke(database, type_name, function, *args).data
        rows.append([dialect, database, f"{type_name}.{function}",
                     value if value is not None else "NULL"])
    print_table("F6: one access pattern, three dialects",
                ["dialect", "database", "function", "result"], rows)
    assert all(row[3] not in (None, "NULL") for row in rows)

    def kernel():
        return browser.invoke(topo.SGF, "Funding", "ProgramBudget",
                              "Rural Clinics").data

    benchmark(kernel)


def test_fig6_mixed_sql_workload(benchmark, healthcare):
    """A broader read mix over the RBH schema (joins, aggregates)."""
    database = healthcare.relational[topo.RBH]
    workload = sql_workload(statements=30)

    def kernel():
        total = 0
        for statement in workload:
            total += database.execute(statement).rowcount
        return total

    assert benchmark(kernel) >= 0
