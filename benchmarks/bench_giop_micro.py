"""GIOP/CDR micro-benchmarks: encode, decode, and frame-peek
throughput.

The S9 macro benches measure whole storms; a marshalling regression
(an accidental copy on the decode path, a quadratic join in the
encoder) hides inside their wall-clock noise.  These kernels time the
wire-stack primitives in isolation so CDR/framing regressions surface
on their own axis:

* ``encode`` / ``decode`` of a representative Request round-trip;
* ``decode`` over a zero-copy ``memoryview`` (the event-loop server's
  hot path) versus over ``bytes``;
* header peeks — ``peek_frame_size`` / ``peek_request`` /
  ``peek_reply_id`` — which every frame pays once or twice;
* ``FrameBuffer`` slicing of a jumbo coalesced chunk back into frames.

Run with ``pytest benchmarks/bench_giop_micro.py --benchmark-only``.
"""

from repro.orb.giop import (ReplyMessage, ReplyStatus, RequestMessage,
                            decode_message, encode_message,
                            peek_frame_size, peek_reply_id, peek_request)
from repro.orb.transport import FrameBuffer

#: A representative discovery-sized request: a handful of mixed-type
#: arguments, a service context, a realistic object key.
REQUEST = RequestMessage(
    request_id=12345,
    object_key=b"obj:codb:sky_survey_main",
    operation="describe_source",
    arguments=["astronomy catalogues", 42, 3.25,
               {"fields": ["ra", "dec", "mag"], "limit": 100}],
    service_context=[(0xBEEF, "orbix")],
)
REQUEST_FRAME = encode_message(REQUEST)

REPLY_FRAME = encode_message(ReplyMessage(
    request_id=12345, status=ReplyStatus.NO_EXCEPTION,
    body={"name": "sky_survey_main", "rows": 100,
          "columns": ["ra", "dec", "mag"]}))


def test_encode_request(benchmark):
    frame = benchmark(encode_message, REQUEST)
    assert peek_request(frame) == (12345, True)


def test_decode_request_from_bytes(benchmark):
    message = benchmark(decode_message, REQUEST_FRAME)
    assert message.request_id == 12345


def test_decode_request_from_memoryview(benchmark):
    """The event-loop server decodes frames sliced from its receive
    buffer as views; this must not cost more than decoding bytes."""
    view = memoryview(REQUEST_FRAME)
    message = benchmark(decode_message, view)
    assert message.request_id == 12345


def test_peek_frame_size(benchmark):
    total = benchmark(peek_frame_size, REQUEST_FRAME[:12])
    assert total == len(REQUEST_FRAME)


def test_peek_request_id(benchmark):
    assert benchmark(peek_request, REQUEST_FRAME) == (12345, True)


def test_peek_reply_id(benchmark):
    assert benchmark(peek_reply_id, REPLY_FRAME) == 12345


def test_framebuffer_slices_coalesced_chunk(benchmark):
    """One jumbo recv carrying 64 frames, sliced back out — the
    server-side hot loop under a pipelined client's batched writes."""
    chunk = REQUEST_FRAME * 64

    def slice_all():
        buffer = FrameBuffer()
        buffer.feed(chunk)
        count = 0
        while buffer.next_frame() is not None:
            count += 1
        return count

    assert benchmark(slice_all) == 64


def test_framebuffer_reassembles_split_frames(benchmark):
    """The same 64 frames fed in awkward 1000-byte chunks."""
    stream = REQUEST_FRAME * 64
    chunks = [stream[start:start + 1000]
              for start in range(0, len(stream), 1000)]

    def reassemble():
        buffer = FrameBuffer()
        count = 0
        for chunk in chunks:
            buffer.feed(chunk)
            while buffer.next_frame() is not None:
                count += 1
        return count

    assert benchmark(reassemble) == 64
