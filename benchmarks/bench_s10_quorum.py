"""S10 — Quorum writes under partitions: availability, fencing, cost.

Three scenarios per replica factor (3 and 5), swept over the chaos
seeds {7, 23, 1999}:

* **healthy** — no partition: every maintenance write commits on a
  majority at the deployment lease's fence.
* **minority cut** — the lease holder plus any minority is severed
  from the rest.  Writes must stay fully available (completeness
  1.00): the facade waits out the old lease and fails over to a
  majority-side primary at a higher fence.  The wait is the p99 story
  — failover costs about one lease TTL, once.
* **majority cut** — the facade's side of the partition holds fewer
  than a quorum.  Every write must be *refused* (availability 0.00,
  by design): committing on a minority is exactly the split-brain the
  protocol exists to prevent.

In the partitioned scenarios the deposed primary also replays a write
under its stale lease (the dual-primary probe); any such write that
commits anywhere counts as a **split-brain commit** and the accepted
number is zero, across every seed.

Results persist to ``BENCH_quorum.json`` (the acceptance artefact of
the quorum work; see docs/quorum.md), including a journal group-commit
appendix: fsync counts and wall time per sync policy for an identical
append workload.
"""

import json
import tempfile
import time
from pathlib import Path

from repro.apps.healthcare import build_healthcare_system
from repro.apps.healthcare import topology as topo
from repro.bench import print_table
from repro.core.journal import JournalEntry, ReplicaJournal
from repro.core.quorum import PrimaryLease, majority
from repro.errors import QuorumError
from repro.orb.faults import FaultyTransport
from repro.orb.transport import InMemoryNetwork

SEEDS = (7, 23, 1999)
REPLICA_FACTORS = (3, 5)
SCENARIOS = ("healthy", "minority cut", "majority cut")
TARGET = topo.RBH
LEASE = 0.05
WRITES = {"healthy": 30, "minority cut": 30, "majority cut": 8}
SYNC_APPENDS = 200


def _build(seed, replicas):
    faulty = FaultyTransport(InMemoryNetwork(), seed=seed)
    deployment = build_healthcare_system(
        transport=faulty, replication_factor=replicas, quorum=True,
        lease_duration=LEASE)
    return faulty, deployment


def _partition(faulty, deployment, replicas, strand_majority):
    """Sever the holder's side of the set; returns the minority size."""
    endpoints = [deployment.codatabase_replica_endpoint(TARGET, index)
                 for index in range(replicas)]
    minority = replicas - majority(replicas)
    faulty.partition(set(endpoints[:minority]), set(endpoints[minority:]))
    if strand_majority:
        # The facade shares the primary's side of the cut: the majority
        # is unreachable, not merely partitioned among themselves.
        facade = deployment.system._facade(TARGET)
        for index in range(minority, replicas):
            facade.mark_dead(index)
    return minority


def _dual_primary_probe(facade, stale):
    """Replay a write under the deposed lease; count any commit."""
    epochs = [runtime.epoch for runtime in facade.runtimes]
    skewed = PrimaryLease(index=stale.index, fence=stale.fence,
                          expires_at=time.monotonic() + 60.0,
                          grants=stale.grants)
    try:
        facade.write_as(skewed, "attach_document", TARGET, "text",
                        "split-brain probe", "")
        committed = 1
    except QuorumError:
        committed = 1 if [r.epoch for r in facade.runtimes] != epochs else 0
    for runtime in facade.runtimes:
        if any(doc["content"] == "split-brain probe"
               for doc in runtime.codatabase.documents_of(TARGET)):
            committed = 1
    return committed


def _run_point(replicas, scenario):
    latencies, ok, attempts, split_brain = [], 0, 0, 0
    elections = aborted = fenced = 0
    for seed in SEEDS:
        faulty, deployment = _build(seed, replicas)
        system = deployment.system
        facade = system._facade(TARGET)
        stale = facade._lease
        if scenario != "healthy":
            _partition(faulty, deployment, replicas,
                       strand_majority=(scenario == "majority cut"))
        for index in range(WRITES[scenario]):
            attempts += 1
            started = time.perf_counter()
            try:
                system.attach_document(TARGET, "text",
                                       f"s10 {scenario} {seed} {index}")
                ok += 1
            except QuorumError:
                pass
            latencies.append(time.perf_counter() - started)
        if scenario != "healthy":
            split_brain += _dual_primary_probe(facade, stale)
        status = facade.lease_status()
        elections += status["elections"]
        aborted += status["aborted_writes"]
        fenced += status["fenced_writes"]
    return {
        "replicas": replicas,
        "scenario": scenario,
        "write_availability": round(ok / attempts, 3),
        "p50_ms": round(_percentile(latencies, 0.50) * 1e3, 3),
        "p99_ms": round(_percentile(latencies, 0.99) * 1e3, 3),
        "elections": elections,
        "aborted_writes": aborted,
        "fenced_writes": fenced,
        "split_brain_commits": split_brain,
    }


def _percentile(samples, fraction):
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1,
                       round(fraction * (len(ordered) - 1)))]


def _sync_policy_sweep():
    """Group commit appendix: disk barriers per policy, same workload."""
    rows = []
    for sync in ("never", "batch", "always"):
        with tempfile.TemporaryDirectory() as root:
            journal = ReplicaJournal(f"{root}/journal.wal", sync=sync,
                                     group_size=8)
            started = time.perf_counter()
            for epoch in range(1, SYNC_APPENDS + 1):
                journal.append(JournalEntry(
                    epoch=epoch, operation="attach_document",
                    arguments=("s", "text", "x" * 64, ""), fence=1))
            journal.close()
            elapsed = time.perf_counter() - started
            rows.append({"sync": sync, "appends": SYNC_APPENDS,
                         "fsyncs": journal.fsyncs,
                         "wall_ms": round(elapsed * 1e3, 2)})
    return rows


def test_s10_quorum(benchmark):
    points = [_run_point(replicas, scenario)
              for replicas in REPLICA_FACTORS for scenario in SCENARIOS]
    sync_rows = _sync_policy_sweep()

    print_table(
        f"S10: quorum write availability and latency under partitions "
        f"(lease {LEASE * 1e3:.0f} ms, seeds {list(SEEDS)})",
        ["replicas", "scenario", "availability", "p50 ms", "p99 ms",
         "split-brain"],
        [[p["replicas"], p["scenario"], f"{p['write_availability']:.2f}",
          f"{p['p50_ms']:.2f}", f"{p['p99_ms']:.2f}",
          p["split_brain_commits"]] for p in points])
    print_table(
        f"S10 appendix: journal group commit ({SYNC_APPENDS} appends, "
        f"group of 8)",
        ["sync", "fsyncs", "wall ms"],
        [[r["sync"], r["fsyncs"], f"{r['wall_ms']:.1f}"] for r in sync_rows])

    by_key = {(p["replicas"], p["scenario"]): p for p in points}
    for replicas in REPLICA_FACTORS:
        # Healthy and minority-cut writes are fully available ...
        assert by_key[(replicas, "healthy")]["write_availability"] == 1.0
        assert by_key[(replicas, "minority cut")]["write_availability"] == 1.0
        # ... majority-cut writes are refused outright, never diverging.
        assert by_key[(replicas, "majority cut")]["write_availability"] == 0.0
        # Failover pays about one lease TTL, visible at the tail.
        assert by_key[(replicas, "minority cut")]["p99_ms"] \
            > by_key[(replicas, "healthy")]["p99_ms"]
    # The protocol's reason to exist: zero split-brain commits anywhere.
    assert all(p["split_brain_commits"] == 0 for p in points)
    # Group commit batches barriers: never < batch < always.
    fsyncs = {r["sync"]: r["fsyncs"] for r in sync_rows}
    assert fsyncs["never"] <= 1  # only the close-time drain, if any
    assert 0 < fsyncs["batch"] < fsyncs["always"] == SYNC_APPENDS

    out = {
        "benchmark": "S10 quorum: write availability under partitions",
        "topology": {"target": TARGET, "seeds": list(SEEDS),
                     "lease_ms": LEASE * 1e3, "writes": WRITES,
                     "replica_factors": list(REPLICA_FACTORS)},
        "points": points,
        "sync_policies": sync_rows,
    }
    path = Path(__file__).resolve().parents[1] / "BENCH_quorum.json"
    path.write_text(json.dumps(out, indent=2) + "\n")

    benchmark(lambda: len(points))
