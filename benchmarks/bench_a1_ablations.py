"""A1 — Ablations over the design choices DESIGN.md calls out.

Three knobs, each isolated:

* **early stop** — the paper's interactive stop-at-first-full-match vs
  an exhaustive sweep of the reachable space;
* **link fan-out** — how many service links each coalition maintains,
  the routing capacity of the loose-coupling layer;
* **ontology** — synonym expansion on/off, measured as recall on
  synonym-phrased queries against the healthcare world.
"""

from repro.apps.healthcare import topology as topo
from repro.bench import build_scaled_space, discovery_workload, print_table
from repro.core.discovery import CoDatabaseClient, DiscoveryEngine
from repro.core.model import Ontology, SourceDescription, topic_score
from repro.core.registry import Registry


def test_a1_early_stop_vs_sweep(benchmark):
    space = build_scaled_space(databases=112, coalitions=14)
    engine = space.discovery_engine()
    workload = discovery_workload(space, 20, seed=23)

    rows = []
    for label, stop in (("stop at first full match", True),
                        ("exhaustive sweep", False)):
        contacts = 0
        leads = 0
        for query in workload:
            result = engine.discover(query.text, query.start_database,
                                     max_hops=10, stop_at_first=stop)
            contacts += result.codatabases_contacted
            leads += len(result.leads)
        rows.append([label, f"{contacts / 20:.1f}", f"{leads / 20:.1f}"])
    print_table("A1: early stop vs exhaustive sweep (112 sources)",
                ["mode", "codbs/query", "leads/query"], rows)
    assert float(rows[0][1]) < float(rows[1][1])  # early stop is cheaper
    assert float(rows[0][2]) <= float(rows[1][2])  # sweep finds >= leads

    query = workload[0]
    benchmark(lambda: engine.discover(query.text, query.start_database,
                                      max_hops=10).resolved)


def test_a1_link_fanout(benchmark):
    """More links per coalition = shorter routes but more metadata to
    propagate; the sweet spot is small."""
    rows = []
    for fanout in (1, 2, 4):
        space = build_scaled_space(databases=112, coalitions=14,
                                   links_per_coalition=fanout)
        engine = space.discovery_engine()
        workload = discovery_workload(space, 20, seed=29)
        contacts = 0
        depth_total = 0
        for query in workload:
            result = engine.discover(query.text, query.start_database,
                                     max_hops=14)
            assert result.resolved
            contacts += result.codatabases_contacted
            depth_total += result.max_depth_reached
        rows.append([fanout, len(space.registry.service_links()),
                     f"{contacts / 20:.1f}", f"{depth_total / 20:.1f}"])
    print_table("A1: service-link fan-out (112 sources, 14 coalitions)",
                ["links/coalition", "total links", "codbs/query",
                 "avg depth"], rows)
    # Higher fan-out shortens routes.
    assert float(rows[-1][3]) <= float(rows[0][3])

    space = build_scaled_space(databases=56, coalitions=7,
                               links_per_coalition=2)
    engine = space.discovery_engine()
    query = discovery_workload(space, 1, seed=3)[0]
    benchmark(lambda: engine.discover(query.text,
                                      query.start_database).resolved)


def test_a1_ontology_recall(benchmark, healthcare):
    """Synonym-phrased queries only resolve with the ontology."""
    synonym_queries = [
        ("health research", "Research"),        # health ~ medical
        ("healthcare insurance", topo.MEDICAL_INSURANCE),
        ("retirement funds", topo.SUPERANNUATION),  # retirement ~ super
    ]

    def recall(registry, ontology):
        hits = 0
        for query_text, expected in synonym_queries:
            # Score directly against coalition topics, isolating the
            # matching layer from routing.
            coalition = registry.coalition(expected)
            score = topic_score(query_text, coalition.information_type,
                                ontology)
            if score >= 0.5:
                hits += 1
        return hits

    registry = healthcare.system.registry
    with_ontology = recall(registry, topo.healthcare_ontology())
    without_ontology = recall(registry, None)
    print_table("A1: ontology synonym recall (3 synonym queries)",
                ["configuration", "resolved"],
                [["with ontology", f"{with_ontology}/3"],
                 ["without ontology", f"{without_ontology}/3"]])
    assert with_ontology > without_ontology

    # End-to-end check through the deployed system (ontology is wired
    # into every co-database).
    browser = healthcare.browser(topo.QUT)
    result = browser.find("health research")
    assert result.data.resolved

    benchmark(lambda: browser.find("health research").data.resolved)
