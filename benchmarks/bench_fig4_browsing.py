"""F4 — Figure 4: browsing the co-database level.

Regenerates the Figure-4 interactions (display coalitions with
information, instances of class Research, documentation formats of RBH)
and reports the discovery cost of each.
"""

from repro.apps.healthcare import topology as topo
from repro.bench import print_table


def test_fig4_browsing_session(benchmark, healthcare):
    browser = healthcare.browser(topo.QUT)

    find = browser.submit(
        "Display Coalitions With Information Medical Research")
    instances = browser.submit("Display Instances of Class Research")
    documents = browser.documentation(topo.RBH, "Research")

    rows = [
        ["Display Coalitions With Information 'Medical Research'",
         find.data.best().name,
         find.data.codatabases_contacted, find.data.metadata_calls],
        ["Display Instances of Class Research",
         f"{len(instances.data)} databases", "-", "-"],
        ["Display Documentation of Instance RBH",
         f"{len(documents.data['documents'])} formats", "-", "-"],
    ]
    print_table("F4: browsing interactions",
                ["statement", "outcome", "codbs", "metadata calls"], rows)

    member_rows = [[d.name, d.information_type] for d in instances.data]
    print_table("F4: instances of class Research (left pane of Figure 4)",
                ["database", "information type"], member_rows)

    assert {d.name for d in instances.data} == \
        {topo.QUT, topo.RMIT, topo.QLD_CANCER, topo.RBH}
    assert {d["format"] for d in documents.data["documents"]} == \
        {"html", "text"}

    def kernel():
        session_browser = healthcare.browser(topo.QUT)
        session_browser.find("Medical Research")
        return session_browser.instances("Research").data

    assert len(benchmark(kernel)) == 4


def test_fig4_information_tree(benchmark, healthcare):
    """The tree pane: coalitions with member leaves."""
    browser = healthcare.browser(topo.QUT)
    tree = browser.information_tree()
    print()
    print(tree, flush=True)
    assert "+ Research" in tree

    benchmark(browser.information_tree)
