"""S5 — The two-level query model: meta-data vs data queries (§2/§5).

"Users in WebFINDIT query the system at two levels: meta-data level
(explore the available information, display meta information ...) and
data level (query actual information stored in databases)."

Measures the latency and middleware-traffic split between the two
levels across representative statements of each kind.
"""

import time

from repro.apps.healthcare import topology as topo
from repro.bench import print_table


def _measure(system, browser, label, action, repeats=15):
    action(browser)  # warm stub caches so steady-state cost is measured
    system.reset_metrics()
    start = time.perf_counter()
    for __ in range(repeats):
        action(browser)
    elapsed = (time.perf_counter() - start) / repeats
    messages = system.metrics()["giop_messages"] / repeats
    return [label, f"{elapsed * 1e6:.0f}", f"{messages:.1f}"]


def test_s5_meta_vs_data_split(benchmark, healthcare):
    system = healthcare.system

    meta_rows = [
        _measure(system, healthcare.browser(topo.QUT),
                 "meta: find (local hit)",
                 lambda b: b.find("Medical Research")),
        _measure(system, healthcare.browser(topo.QUT),
                 "meta: find (link traversal)",
                 lambda b: b.find("Medical Insurance")),
        _measure(system, healthcare.browser(topo.QUT),
                 "meta: instances of class",
                 lambda b: b.instances("Research")),
        _measure(system, healthcare.browser(topo.QUT),
                 "meta: access information",
                 lambda b: b.access_information(topo.RBH)),
    ]
    data_rows = [
        _measure(system, healthcare.browser(topo.QUT),
                 "data: scalar function (Oracle)",
                 lambda b: b.invoke(topo.RBH, "ResearchProjects",
                                    "Funding", "AIDS and drugs")),
        _measure(system, healthcare.browser(topo.QUT),
                 "data: native SQL scan (Oracle)",
                 lambda b: b.fetch(topo.RBH,
                                   "SELECT * FROM MedicalStudent")),
        _measure(system, healthcare.browser(topo.QUT),
                 "data: OQL query (Ontos)",
                 lambda b: b.fetch(topo.AMBULANCE,
                                   "SELECT callout_no FROM Callout "
                                   "WHERE priority = 1")),
    ]
    print_table("S5: two-level query cost split",
                ["statement", "us/stmt", "giop msgs/stmt"],
                meta_rows + data_rows)

    # Data statements hit exactly one source object; metadata discovery
    # may touch several co-databases.
    assert float(data_rows[0][2]) == 1.0
    assert float(meta_rows[1][2]) >= 3.0

    browser = healthcare.browser(topo.QUT)

    def kernel():
        browser.find("Medical Research")
        return browser.invoke(topo.RBH, "ResearchProjects", "Funding",
                              "AIDS and drugs").data

    assert benchmark(kernel) == 1250000.0
