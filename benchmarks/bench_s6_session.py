"""S6 — The end-to-end healthcare session (§5, Figures 4-6).

Runs the paper's full user walkthrough as one scripted session and
reports the total middleware traffic it generates — the "zero to
answer" cost of the architecture.
"""

from repro.apps.healthcare import topology as topo
from repro.apps.healthcare.data import AIDS_PROJECT_TITLE
from repro.bench import print_table


def _session(healthcare):
    browser = healthcare.browser(topo.QUT)
    browser.submit("Display Coalitions With Information Medical Research")
    browser.submit("Connect To Coalition Research")
    browser.submit("Display SubClasses of Class Research")
    browser.submit("Display Instances of Class Research")
    browser.submit("Display Documentation of Instance "
                   "Royal Brisbane Hospital of Class Research")
    browser.submit("Display Access Information of Instance "
                   "Royal Brisbane Hospital")
    browser.submit("Display Interface of Instance Royal Brisbane Hospital")
    browser.invoke(topo.RBH, "ResearchProjects", "Funding",
                   AIDS_PROJECT_TITLE)
    browser.fetch(topo.RBH, "SELECT * FROM MedicalStudent")
    browser.submit("Find Coalitions With Information Medical Insurance")
    browser.submit("Connect To Coalition Medical Insurance")
    browser.submit("Display Instances of Class Medical Insurance")
    return browser


def test_s6_full_session(benchmark, healthcare):
    system = healthcare.system
    system.reset_metrics()
    browser = _session(healthcare)
    metrics = system.metrics()

    print_table("S6: end-to-end session cost (Figures 4-6 + §2.3)",
                ["metric", "value"],
                [["WebTassili statements", len(browser.transcript)],
                 ["GIOP messages", metrics["giop_messages"]],
                 ["GIOP bytes sent", metrics["giop_bytes_sent"]],
                 ["messages/statement",
                  f"{metrics['giop_messages'] / len(browser.transcript):.1f}"]])

    assert len(browser.transcript) == 12
    assert metrics["giop_messages"] >= 12

    def kernel():
        return len(_session(healthcare).transcript)

    assert benchmark(kernel) == 12


def test_s6_transcript_contents(benchmark, healthcare):
    """The transcript carries every artefact the figures show."""
    browser = _session(healthcare)
    transcript = browser.render_transcript()
    for marker in ("Research", "Royal Brisbane Hospital",
                   "dba.icis.qut.edu.au", "Type ResearchProjects {",
                   "StudentId", "Medibank"):
        assert marker in transcript

    benchmark(lambda: len(browser.render_transcript()))
