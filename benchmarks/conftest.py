"""Shared fixtures for the benchmark harness.

Run with::

    pytest benchmarks/ --benchmark-only

Each bench prints the table/series it regenerates (compare with
EXPERIMENTS.md) and registers one timed kernel with pytest-benchmark.
"""

from __future__ import annotations

import pytest

from repro.apps.healthcare import build_healthcare_system


@pytest.fixture(scope="session")
def healthcare():
    """One Figure-1 deployment shared by the figure benches."""
    return build_healthcare_system()
