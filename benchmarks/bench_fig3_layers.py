"""F3 — Figure 3: the four WebFINDIT layers.

Shows that one user statement traverses query layer -> communication
layer (GIOP) -> meta-data layer (co-database servers) or data layer
(wrapped databases), with the middleware traffic each kind generates.
"""

from repro.apps.healthcare import topology as topo
from repro.bench import print_table


def _traffic(system, action):
    system.reset_metrics()
    action()
    return system.metrics()["giop_messages"]


def test_fig3_layer_traffic(benchmark, healthcare):
    system = healthcare.system

    statements = [
        ("meta: Find Coalitions (local)",
         lambda browser: browser.find("Medical Research")),
        ("meta: Find Coalitions (via link)",
         lambda browser: browser.find("Medical Insurance")),
        ("meta: Display Instances",
         lambda browser: browser.instances("Research")),
        ("meta: Display Access Information",
         lambda browser: browser.access_information(topo.RBH)),
        ("data: native SQL fetch",
         lambda browser: browser.fetch(
             topo.RBH, "SELECT COUNT(*) FROM MedicalStudent")),
        ("data: exported function invoke",
         lambda browser: browser.invoke(
             topo.RBH, "ResearchProjects", "Funding", "AIDS and drugs")),
    ]

    rows = []
    for label, action in statements:
        browser = healthcare.browser(topo.QUT)
        messages = _traffic(system, lambda: action(browser))
        rows.append([label, messages])
    print_table("F3: GIOP messages per WebTassili statement",
                ["statement", "giop messages"], rows)

    meta_messages = rows[0][1]
    data_messages = rows[4][1]
    assert meta_messages >= 1 and data_messages >= 1

    browser = healthcare.browser(topo.QUT)

    def kernel():
        return browser.find("Medical Research")

    benchmark(kernel)


def test_fig3_statement_pipeline(benchmark, healthcare):
    """Query-processor statement counting: the browser feeds the
    processor, the processor feeds the ORB."""
    browser = healthcare.browser(topo.QUT)
    processor = browser._processor
    before = processor.statements_processed
    browser.find("Medical Research")
    browser.instances("Research")
    assert processor.statements_processed == before + 2

    def kernel():
        return browser.instances("Research").data

    result = benchmark(kernel)
    assert len(result) == 4
