"""F2 — Figure 2: the implementation mapping and ORB interoperability.

Prints the deployment matrix (DBMS -> ORB product -> gateway) and times
data access through each gateway kind: JDBC (relational), C++ direct
binding (ObjectStore), and JNI-style binding (Ontos).
"""

from repro.apps.healthcare import topology as topo
from repro.bench import print_table

#: The paper's assignment (§4), keyed by DBMS.
PAPER_ASSIGNMENT = {
    "Oracle": ("VisiBroker for Java", "jdbc"),
    "mSQL": ("OrbixWeb", "jdbc"),
    "DB2 Universal Database": ("OrbixWeb", "jdbc"),
    "ObjectStore": ("Orbix", "c++"),
    "Ontos": ("OrbixWeb", "jni"),
}


def test_fig2_deployment_matrix(benchmark, healthcare):
    records = healthcare.system.deployment_map()
    rows = []
    mismatches = 0
    for record in sorted(records, key=lambda r: (r.dbms, r.source_name)):
        expected_orb, expected_gateway = PAPER_ASSIGNMENT[record.dbms]
        ok = (record.orb_product == expected_orb
              and record.gateway == expected_gateway)
        mismatches += 0 if ok else 1
        rows.append([record.source_name, record.dbms, record.orb_product,
                     record.gateway, "ok" if ok else "MISMATCH"])
    print_table("F2: deployment map (DBMS -> ORB -> gateway)",
                ["source", "dbms", "orb", "gateway", "vs paper"], rows)
    assert mismatches == 0

    def verify():
        return len(healthcare.system.deployment_map())

    assert benchmark(verify) == 14


def test_fig2_gateway_kinds_latency(benchmark, healthcare):
    """One data call per gateway kind, through the ORB."""
    system = healthcare.system
    calls = {
        "jdbc (Oracle/VisiBroker)": lambda: system.wrapper_client(topo.RBH)
            .invoke("ResearchProjects", "Funding", ["AIDS and drugs"]),
        "c++ (ObjectStore/Orbix)": lambda: system.wrapper_client(topo.AMP)
            .invoke("Superannuation", "FundsByCategory", ["growth"]),
        "jni (Ontos/OrbixWeb)": lambda: system.wrapper_client(topo.AMBULANCE)
            .invoke("Callouts", "CalloutsTo", [topo.RBH]),
    }
    import time
    rows = []
    for label, call in calls.items():
        start = time.perf_counter()
        for __ in range(20):
            call()
        elapsed = (time.perf_counter() - start) / 20
        rows.append([label, f"{elapsed * 1e6:.0f}"])
    print_table("F2: per-invocation latency by gateway kind",
                ["gateway", "us/call"], rows)

    benchmark(calls["jdbc (Oracle/VisiBroker)"])


def test_fig2_cross_product_requests(benchmark, healthcare):
    """Every wrapper call from the system ORB is a cross-product IIOP
    request; the trio of product ORBs must all handle some."""
    system = healthcare.system
    system.reset_metrics()
    for spec in topo.DATABASE_SPECS:
        system.wrapper_client(spec.name).banner
    per_orb = system.metrics()["orbs"]
    rows = [[product, stats["requests_handled"],
             stats["cross_product_requests"]]
            for product, stats in per_orb.items()
            if stats["requests_handled"]]
    print_table("F2: requests handled per ORB product",
                ["orb", "handled", "cross-product"], rows)
    trio = {"Orbix", "OrbixWeb", "VisiBroker for Java"}
    handled_products = {product for product, stats in per_orb.items()
                        if stats["requests_handled"] and product in trio}
    assert handled_products == trio

    def kernel():
        return system.wrapper_client(topo.MBF).banner

    benchmark(kernel)
