"""F5 — Figure 5: displaying the RBH HTML document.

The documentation artefact is fetched from RBH's co-database over the
ORB; the bench verifies content identity and times retrieval.
"""

from repro.apps.healthcare import RBH_HTML_DOCUMENT
from repro.apps.healthcare import topology as topo
from repro.bench import print_table


def test_fig5_document_retrieval(benchmark, healthcare):
    browser = healthcare.browser(topo.QUT)
    result = browser.documentation(topo.RBH, "Research")
    documents = result.data["documents"]
    html = next(d for d in documents if d["format"] == "html")

    rows = [[d["format"], len(d["content"]), d["url"] or "(inline)"]
            for d in documents]
    print_table("F5: documentation artefacts of Royal Brisbane Hospital",
                ["format", "bytes", "url"], rows)

    assert html["content"] == RBH_HTML_DOCUMENT
    assert html["url"] == "http://www.medicine.uq.edu.au/RBH"

    system = healthcare.system
    system.reset_metrics()
    browser.documentation(topo.RBH)
    messages = system.metrics()["giop_messages"]
    print_table("F5: retrieval cost", ["metric", "value"],
                [["giop messages", messages],
                 ["html bytes", len(html["content"])]])

    def kernel():
        return browser.documentation(topo.RBH).data["documents"]

    assert len(benchmark(kernel)) == 2
