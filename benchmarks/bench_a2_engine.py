"""A2 — Relational-engine ablations.

The data layer's own design choices, isolated: index probes vs
sequential scans, hash joins vs nested loops, and the statement cache.
These are the knobs that make the wrapped sources fast enough for the
federation benches to measure middleware rather than storage.
"""

import time

from repro.bench import print_table
from repro.sql.engine import Database

ROWS = 3000


def _timed(fn, repeats=20):
    start = time.perf_counter()
    for __ in range(repeats):
        fn()
    return (time.perf_counter() - start) / repeats


def test_a2_index_vs_scan(benchmark):
    db = Database("idx")
    db.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
    db.executemany("INSERT INTO t VALUES (?, ?)",
                   [[i, i % 97] for i in range(ROWS)])

    probe = _timed(lambda: db.execute(
        "SELECT v FROM t WHERE id = ?", [ROWS // 2]))
    # Force a scan by probing a non-indexed column with one match.
    scan = _timed(lambda: db.execute(
        "SELECT id FROM t WHERE v * 1 = 48 AND id < 100"))

    explain = [r[0] for r in db.execute(
        "EXPLAIN SELECT v FROM t WHERE id = 1").rows]
    print_table("A2: point query, index probe vs sequential scan "
                f"({ROWS} rows)",
                ["access path", "us/query"],
                [["IndexLookup (pk)", f"{probe * 1e6:.0f}"],
                 ["SeqScan (computed predicate)", f"{scan * 1e6:.0f}"]])
    assert "  IndexLookup(t) key=(id)" in explain
    assert probe < scan  # the probe must win

    benchmark(lambda: db.execute("SELECT v FROM t WHERE id = ?",
                                 [ROWS // 3]).scalar())


def test_a2_hash_vs_nested_loop_join(benchmark):
    db = Database("joins")
    db.execute("CREATE TABLE a (id INT PRIMARY KEY, grp INT)")
    db.execute("CREATE TABLE b (id INT PRIMARY KEY, label VARCHAR(10))")
    n = 400
    db.executemany("INSERT INTO a VALUES (?, ?)",
                   [[i, i % 7] for i in range(n)])
    db.executemany("INSERT INTO b VALUES (?, ?)",
                   [[i, f"l{i}"] for i in range(n)])

    hash_join = _timed(lambda: db.execute(
        "SELECT COUNT(*) FROM a JOIN b ON a.id = b.id"), repeats=5)
    # The same join expressed with inequalities cannot hash, forcing
    # the O(n^2) nested loop on identical data.
    nested = _timed(lambda: db.execute(
        "SELECT COUNT(*) FROM a JOIN b ON a.id <= b.id AND a.id >= b.id"),
        repeats=5)

    print_table(f"A2: equi-join {n}x{n}, hash vs nested loop",
                ["strategy", "ms/query"],
                [["HashJoin (a.id = b.id)", f"{hash_join * 1e3:.2f}"],
                 ["NestedLoop (<= and >=)", f"{nested * 1e3:.2f}"]])
    assert hash_join < nested

    benchmark(lambda: db.execute(
        "SELECT COUNT(*) FROM a JOIN b ON a.id = b.id").scalar())


def test_a2_statement_cache(benchmark):
    db = Database("cache")
    db.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
    db.executemany("INSERT INTO t VALUES (?, ?)",
                   [[i, i] for i in range(200)])

    def cached():
        db.execute("SELECT v FROM t WHERE id = ?", [7])

    counter = [0]

    def uncached():
        counter[0] += 1
        db.execute(f"SELECT v FROM t WHERE id = 7 -- {counter[0]}")

    # min-of-3 runs per mode: this is a systematic-effect check, and a
    # single noisy scheduler tick must not flip the comparison.
    warm = min(_timed(cached, repeats=200) for __ in range(3))
    cold = min(_timed(uncached, repeats=200) for __ in range(3))
    print_table("A2: statement cache (same text vs unique text)",
                ["mode", "us/query"],
                [["cached parse", f"{warm * 1e6:.0f}"],
                 ["fresh parse every time", f"{cold * 1e6:.0f}"]])
    assert warm < cold

    benchmark(cached)
