"""S3 — Global-schema integration does not scale (§6.1).

"Tightly-coupled approaches ... [do] not scale-up given the complexity
when constructing the global schema for a large number of heterogeneous
systems."

We grow a federation source by source and compare the cumulative
administrative work: pairwise schema reconciliation for the
centralized multidatabase (quadratic) versus WebFINDIT's incremental
coalition joins (linear in coalition size per join).
"""

from repro.bench import build_scaled_space, print_table, ratio

SIZES = (25, 50, 100, 200)


def _point(databases: int):
    space = build_scaled_space(databases=databases,
                               coalitions=max(databases // 10, 2))
    return {
        "databases": databases,
        "global_comparisons": space.global_schema.total_comparisons,
        "webfindit_updates": space.registry.update_operations,
        "conflicts": space.global_schema.total_conflicts,
    }


def test_s3_construction_cost_curve(benchmark):
    points = [_point(size) for size in SIZES]
    rows = [[p["databases"], p["global_comparisons"],
             p["webfindit_updates"],
             f"{ratio(p['global_comparisons'], p['webfindit_updates']):.1f}x"]
            for p in points]
    print_table(
        "S3: cumulative integration work vs federation size",
        ["N databases", "global-schema comparisons",
         "WebFINDIT co-db writes", "ratio"], rows)

    # Shape: doubling N roughly quadruples global-schema work but only
    # ~doubles WebFINDIT's incremental bookkeeping.
    global_growth = points[-1]["global_comparisons"] / \
        points[0]["global_comparisons"]
    webfindit_growth = points[-1]["webfindit_updates"] / \
        points[0]["webfindit_updates"]
    size_growth = SIZES[-1] / SIZES[0]
    assert global_growth > size_growth * 4  # super-linear (quadratic-ish)
    assert webfindit_growth < size_growth * 2.5  # near-linear

    def kernel():
        return build_scaled_space(databases=50, coalitions=5) \
            .global_schema.total_comparisons

    benchmark(kernel)


def test_s3_query_tradeoff(benchmark):
    """Centralization's flip side: the global schema answers a query in
    one lookup, while WebFINDIT spends a few metadata calls — the
    trade the paper makes for autonomy and scale."""
    space = build_scaled_space(databases=100, coalitions=10)
    topic = list(space.coalition_topics.values())[4]
    engine = space.discovery_engine()
    discovery = engine.discover(topic, space.database_names[0], max_hops=10)
    central = space.global_schema.discover(topic)

    print_table(
        "S3: query-time cost (the price of decentralization)",
        ["approach", "lookups/contacts", "construction cost"],
        [["global schema", 1, space.global_schema.total_comparisons],
         ["WebFINDIT", discovery.codatabases_contacted,
          space.registry.update_operations]])
    assert discovery.resolved
    assert central  # both find providers

    def kernel():
        return len(space.global_schema.discover(topic))

    benchmark(kernel)
