"""F1 — Figure 1: the medical-world topology.

Regenerates the topology inventory (14 databases, 5 coalitions, 9
service links, 28 total databases counting co-databases) and times a
full deployment of the federation.
"""

from repro.apps.healthcare import build_healthcare_system
from repro.apps.healthcare import topology as topo
from repro.bench import print_table


def test_fig1_topology_inventory(benchmark, healthcare):
    registry = healthcare.system.registry
    summary = registry.summary()

    rows = [
        ["databases", summary["sources"], 14],
        ["coalitions", summary["coalitions"], 5],
        ["service links", summary["service_links"], 9],
        ["memberships", summary["memberships"], "-"],
        ["databases + co-databases", 2 * summary["sources"], 28],
    ]
    print_table("F1: Figure-1 topology (measured vs paper)",
                ["entity", "measured", "paper"], rows)

    coalition_rows = [
        [name, ", ".join(registry.coalition(name).members)]
        for name in registry.coalition_names()
    ]
    print_table("F1: coalition membership", ["coalition", "members"],
                coalition_rows)

    link_rows = [[link.label, link.kind, link.information_type]
                 for link in registry.service_links()]
    print_table("F1: service links", ["label", "kind", "information"],
                link_rows)

    # Timed kernel: verifying membership/link structure.
    def verify():
        assert registry.summary()["sources"] == 14
        return sum(len(registry.coalition(c).members)
                   for c in registry.coalition_names())

    assert benchmark(verify) == 10


def test_fig1_full_deployment(benchmark):
    """Time to stand up the entire federation from nothing."""
    deployment = benchmark.pedantic(build_healthcare_system,
                                    rounds=3, iterations=1)
    assert deployment.system.registry.summary()["sources"] == 14
