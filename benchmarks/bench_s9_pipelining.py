"""S9 — GIOP pipelining and striping against a hot co-database.

The scenario the ROADMAP's transport item names: many concurrent
clients converge on *one* popular co-database over real TCP with a
modelled WAN latency.  The pooled-serial baseline needs one
connection per in-flight caller, so a client storm slams the server's
accept queue all at once — connection setup, accept-loop
serialisation, and (past the listen backlog) kernel SYN retransmits
dominate wall-clock.  The pipelined transport multiplexes the same
burst onto ``stripes`` warm connections, matching replies by
``request_id``, so the storm costs four TCP handshakes total.

Each client runs one depth-0 discovery (three sequential metadata
calls against the hot co-database) the moment the barrier drops.
Completeness is checked per client: a run only counts if every
client's discovery resolved with the expected coalition lead.

Expected shape: at small client counts the baseline's
connection-per-caller model keeps up (each connection is its own
server thread, and pipelining pays an extra reader/worker handoff per
request); as the burst grows past the accept backlog the baseline
falls off a cliff while pipelining stays flat.  The acceptance gate is
the hot-endpoint point: >= 1.5x lower wall-clock with
pipelining+striping, completeness 1.00.

Results persist to ``BENCH_pipelining.json``.
"""

import json
import threading
import time
from pathlib import Path

from repro.bench import print_table
from repro.core.discovery import CoDatabaseClient, DiscoveryEngine
from repro.core.codatabase import CODATABASE_INTERFACE, CoDatabaseServant
from repro.core.model import SourceDescription
from repro.core.registry import Registry
from repro.orb import ORBIX, TcpTransport, create_orb

TOPIC = "astronomy catalogues"
HOT_DB = "sky_survey_main"
LATENCY = 0.005          # modelled one-way WAN delay, seconds
CLIENT_COUNTS = (32, 96, 160)
HOT_CLIENTS = 96         # the acceptance-gate point (past the backlog)
STRIPES = 4
PIPELINE_DEPTH = 32
MIN_SPEEDUP = 1.5


def _registry():
    registry = Registry()
    registry.create_coalition("Sky Survey", TOPIC)
    registry.add_source(SourceDescription(name=HOT_DB,
                                          information_type=TOPIC))
    registry.join(HOT_DB, "Sky Survey")
    return registry


def _run_config(transport, clients):
    """All *clients* fire one discovery at the hot co-database at
    once; returns (wall_clock_s, completeness, metrics_snapshot)."""
    registry = _registry()
    orb = create_orb(ORBIX, transport, host="127.0.0.1", port=0)
    try:
        ior = orb.activate(CoDatabaseServant(registry.codatabase(HOT_DB)),
                           CODATABASE_INTERFACE, object_name="codb-hot")

        def resolver(name):
            return CoDatabaseClient.for_proxy(
                orb.proxy(ior, CODATABASE_INTERFACE), name)

        barrier = threading.Barrier(clients)
        complete = []
        failures = []

        def client(index):
            engine = DiscoveryEngine(resolver)
            barrier.wait()
            try:
                result = engine.discover(TOPIC, HOT_DB)
                complete.append(
                    result.resolved
                    and any(lead.name == "Sky Survey"
                            for lead in result.leads))
            except Exception as exc:  # noqa: BLE001 - counted below
                failures.append(exc)

        threads = [threading.Thread(target=client, args=(index,))
                   for index in range(clients)]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
        completeness = (sum(complete) / clients) if not failures else 0.0
        metrics = transport.metrics
        return elapsed, completeness, {
            "connections_opened": metrics.connections_opened,
            "requests_pipelined": metrics.requests_pipelined,
            "max_in_flight": metrics.max_in_flight,
            "pipeline_stalls": metrics.pipeline_stalls,
            "pipeline_overflows": metrics.pipeline_overflows,
        }
    finally:
        transport.close()


def _point(clients):
    baseline_s, base_complete, base_metrics = _run_config(
        TcpTransport(pooled=True, latency=LATENCY), clients)
    piped_s, piped_complete, piped_metrics = _run_config(
        TcpTransport(pipelined=True, stripes=STRIPES,
                     pipeline_depth=PIPELINE_DEPTH, latency=LATENCY),
        clients)
    return {
        "clients": clients,
        "calls": clients * 3,
        "baseline_ms": round(baseline_s * 1e3, 1),
        "pipelined_ms": round(piped_s * 1e3, 1),
        "speedup": round(baseline_s / piped_s, 2),
        "baseline_completeness": round(base_complete, 2),
        "pipelined_completeness": round(piped_complete, 2),
        "baseline_connections": base_metrics["connections_opened"],
        "pipelined_connections": piped_metrics["connections_opened"],
        "pipelined_metrics": piped_metrics,
    }


def test_s9_hot_endpoint_pipelining(benchmark):
    points = [_point(clients) for clients in CLIENT_COUNTS]

    rows = [[p["clients"], p["calls"],
             f"{p['baseline_ms']:.0f}", p["baseline_connections"],
             f"{p['pipelined_ms']:.0f}", p["pipelined_connections"],
             f"{p['speedup']:.2f}x",
             f"{p['pipelined_completeness']:.2f}"]
            for p in points]
    print_table(
        f"S9: hot co-database storm, pooled-serial vs pipelined "
        f"(stripes={STRIPES}, latency={LATENCY * 1e3:.0f}ms one-way)",
        ["clients", "calls", "serial ms", "conns",
         "pipelined ms", "conns", "speedup", "completeness"], rows)

    # Completeness 1.00 everywhere: nobody lost or cross-wired a reply.
    for p in points:
        assert p["baseline_completeness"] == 1.0
        assert p["pipelined_completeness"] == 1.0
        assert p["pipelined_metrics"]["pipeline_stalls"] == 0
        # The whole point: the storm rides a handful of connections.
        assert p["pipelined_connections"] <= STRIPES + \
            p["pipelined_metrics"]["pipeline_overflows"]

    # Acceptance gate: at the hot-endpoint point the pipelined
    # transport is >= 1.5x faster than the pooled-serial baseline.
    hot = next(p for p in points if p["clients"] == HOT_CLIENTS)
    assert hot["speedup"] >= MIN_SPEEDUP, \
        f"hot-endpoint speedup {hot['speedup']}x < {MIN_SPEEDUP}x"

    out = {
        "benchmark": "S9 pipelining: hot co-database client storm",
        "scenario": {
            "topic": TOPIC,
            "latency_ms_one_way": LATENCY * 1e3,
            "stripes": STRIPES,
            "pipeline_depth": PIPELINE_DEPTH,
            "hot_clients": HOT_CLIENTS,
            "min_speedup": MIN_SPEEDUP,
        },
        "points": points,
        "hot_endpoint_speedup": hot["speedup"],
    }
    path = Path(__file__).resolve().parents[1] / "BENCH_pipelining.json"
    path.write_text(json.dumps(out, indent=2) + "\n")

    benchmark(lambda: hot["speedup"])
