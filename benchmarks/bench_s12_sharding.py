"""S12 — registry sharding and the shared cache tier.

Two questions, one harness:

1. **Does sharding buy registry throughput?**  The naming/registry
   space is split across N independent shard servers by the consistent
   hash ring; each shard serializes its writes under one lock and
   charges a per-commit ``service_time`` (the stand-in for a real
   registry server's disk/index cost).  Eight client threads advertise
   a population of sources and then resolve every advertisement back,
   all through :class:`ShardedRegistryClient` over real GIOP endpoints.
   With one shard every commit queues behind one lock; with four, the
   ring spreads the same workload over four independent servers and
   aggregate advertise+resolve throughput must rise accordingly
   (gate: >= 2x at 4 shards on the largest population).

2. **What does the shared cache tier save?**  A 4-shard federation
   with the cache-tier co-database deployed takes two identical read
   passes over every source's metadata: the cold pass misses and
   fills, the warm pass must be served almost entirely by the tier
   (gate: warm hit rate >= 0.95), and one registry mutation's
   invalidation broadcast drops exactly the affected entries.

``REPRO_BENCH_SMOKE=1`` shrinks the sweep for CI (population and shard
counts small enough for a runner; the 2x gate relaxes to a sanity
check because commit cost no longer dominates at toy populations).

Results persist to ``BENCH_sharding.json``.
"""

import json
import os
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro.bench import print_table
from repro.core.model import SourceDescription
from repro.core.registry import Registry
from repro.core.sharding import (REGISTRY_SHARD_INTERFACE, HashRing,
                                 RegistryShardServant, RemoteShard,
                                 ShardedRegistryClient)
from repro.core.system import WebFinditSystem
from repro.oodb.database import ObjectDatabase
from repro.orb.orb import Orb
from repro.orb.transport import InMemoryNetwork

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
POPULATIONS = (48, 200) if SMOKE else (48, 500, 5000)
SHARD_COUNTS = (1, 4) if SMOKE else (1, 4, 8)
SERVICE_TIME = 0.001       # seconds each shard commit holds its lock
WORKERS = 8                # concurrent maintenance clients
VNODES = 32
CACHE_SOURCES = 48 if SMOKE else 200
CACHE_SHARDS = 4

#: Gate: aggregate advertise+resolve throughput at 4 shards on the
#: largest population vs the single-shard deployment.
SPEEDUP_GATE = 1.05 if SMOKE else 2.0
#: Gate: warm-pass hit rate through the shared cache tier.
WARM_HIT_GATE = 0.95


def build_federation(shard_count):
    """N shard servers on real GIOP endpoints behind one ring."""
    transport = InMemoryNetwork()
    handles = []
    for index in range(shard_count):
        orb = Orb(name=f"bench-shard{index}", transport=transport,
                  host=f"shard{index}.bench", product="WebFINDIT")
        ior = orb.activate(
            RegistryShardServant(Registry(), service_time=SERVICE_TIME),
            REGISTRY_SHARD_INTERFACE, object_name=f"shard{index}")
        handles.append(RemoteShard(orb.proxy(ior,
                                             REGISTRY_SHARD_INTERFACE)))
    return ShardedRegistryClient(
        handles, ring=HashRing(range(shard_count), vnodes=VNODES))


def fan_out(names, work):
    """Run *work(name)* for every name across the worker pool; returns
    wall-clock seconds for the whole batch."""
    start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=WORKERS) as pool:
        for __ in pool.map(work, names):
            pass
    return time.perf_counter() - start


def run_config(population, shard_count):
    client = build_federation(shard_count)
    names = [f"src{index:05d}" for index in range(population)]

    advertise_s = fan_out(names, lambda name: client.add_source(
        SourceDescription(name=name, information_type="cardiology",
                          location=f"{name}.bench.net")))
    resolve_s = fan_out(names, lambda name: client.source(name))

    assert client.source_names() == sorted(names)
    total_ops = 2 * population
    return {
        "population": population,
        "shards": shard_count,
        "advertise_s": round(advertise_s, 3),
        "resolve_s": round(resolve_s, 3),
        "advertise_rps": round(population / advertise_s, 1),
        "resolve_rps": round(population / resolve_s, 1),
        "aggregate_rps": round(total_ops / (advertise_s + resolve_s), 1),
    }


def run_cache_tier(population):
    """Cold vs warm read passes through the shared cache tier."""
    system = WebFinditSystem(shards=CACHE_SHARDS, cache_tier=True)
    names = [f"src{index:05d}" for index in range(population)]
    for name in names:
        database = ObjectDatabase(name=name, product="ObjectStore")
        system.register_object_source(database, SourceDescription(
            name=name, information_type="cardiology",
            location=f"{name}.bench.net"))
    system.create_coalition("Cardio", "cardiology")
    for name in names[:8]:
        system.join(name, "Cardio")

    def read_pass():
        start = time.perf_counter()
        for name in names:
            client = system.codatabase_client(name)
            client.memberships()
            client.known_coalitions()
        return time.perf_counter() - start

    cold_s = read_pass()
    cold = system.cache_tier_servant.stats()
    cold_rate = cold["cache"]["hits"] / cold["lookups"] \
        if cold["lookups"] else 0.0

    warm_s = read_pass()
    warm = system.cache_tier_servant.stats()
    warm_lookups = warm["lookups"] - cold["lookups"]
    warm_hits = warm["cache"]["hits"] - cold["cache"]["hits"]
    warm_rate = warm_hits / warm_lookups if warm_lookups else 0.0

    # One mutation's invalidation broadcast bounds staleness: the
    # touched co-databases re-miss, everything else keeps hitting.
    system.join(names[8], "Cardio")
    after = system.cache_tier_servant.stats()

    return {
        "population": population,
        "shards": CACHE_SHARDS,
        "cold_pass_s": round(cold_s, 3),
        "warm_pass_s": round(warm_s, 3),
        "cold_hit_rate": round(cold_rate, 3),
        "warm_hit_rate": round(warm_rate, 3),
        "invalidation_batches": after["invalidation_batches"],
        "invalidated_entries": after["invalidated_entries"],
    }


def test_s12_sharding(benchmark):
    sweep = [run_config(population, shard_count)
             for population in POPULATIONS
             for shard_count in SHARD_COUNTS]
    cache = run_cache_tier(CACHE_SOURCES)

    print_table(
        f"S12: sharded registry throughput ({WORKERS} clients, "
        f"{SERVICE_TIME * 1e3:.1f}ms commit cost)",
        ["sources", "shards", "advertise rps", "resolve rps",
         "aggregate rps"],
        [[row["population"], row["shards"], row["advertise_rps"],
          row["resolve_rps"], row["aggregate_rps"]] for row in sweep])
    print_table(
        "S12: shared cache tier, cold vs warm pass",
        ["sources", "shards", "cold s", "warm s", "cold hit", "warm hit"],
        [[cache["population"], cache["shards"], cache["cold_pass_s"],
          cache["warm_pass_s"], cache["cold_hit_rate"],
          cache["warm_hit_rate"]]])

    largest = POPULATIONS[-1]
    by_key = {(row["population"], row["shards"]): row for row in sweep}
    baseline = by_key[(largest, 1)]["aggregate_rps"]
    four = by_key[(largest, 4)]["aggregate_rps"]
    speedup = four / baseline

    # Gate 1 — sharding pays: aggregate advertise+resolve throughput
    # at 4 shards clears the gate over the single-shard registry.
    assert speedup >= SPEEDUP_GATE, \
        (f"4-shard aggregate {four} rps is only {speedup:.2f}x the "
         f"single-shard {baseline} rps (gate {SPEEDUP_GATE}x)")

    # Gate 2 — the tier serves warm reads: the second pass over the
    # same metadata comes from the shared cache, not GIOP round-trips.
    assert cache["warm_hit_rate"] >= WARM_HIT_GATE, cache
    assert cache["cold_hit_rate"] <= 0.10, cache

    # Gate 3 — mutation invalidation reached the tier.
    assert cache["invalidation_batches"] > 0

    out = {
        "benchmark": "S12 sharded registry + shared cache tier",
        "scenario": {
            "smoke": SMOKE,
            "populations": list(POPULATIONS),
            "shard_counts": list(SHARD_COUNTS),
            "commit_service_time_ms": SERVICE_TIME * 1e3,
            "client_threads": WORKERS,
            "ring_vnodes": VNODES,
            "speedup_gate": SPEEDUP_GATE,
            "warm_hit_gate": WARM_HIT_GATE,
        },
        "sweep": sweep,
        "speedup_4_shards_largest": round(speedup, 2),
        "cache_tier": cache,
        "notes": (
            "Each shard server charges the commit service time under "
            "its own lock, so a single shard serializes every "
            "advertisement while the ring spreads them across N "
            "independent servers. The cache-tier pass reads every "
            "source's metadata twice: the cold pass fills the shared "
            "co-database, the warm pass hits it, and a registry "
            "mutation's epoch-tagged invalidation broadcast drops "
            "exactly the affected entries."),
    }
    path = Path(__file__).resolve().parents[1] / "BENCH_sharding.json"
    path.write_text(json.dumps(out, indent=2) + "\n")

    benchmark(lambda: by_key[(largest, 4)]["aggregate_rps"])
