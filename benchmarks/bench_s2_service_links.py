"""S2 — Service links are low-overhead alternatives to coalitions (§2.1).

"Service links are a simplified way to share information.  They allow
sharing with low overhead.  The amount of sharing in a service link
involves a minimum of information exchange."

We measure the metadata writes (co-database updates) needed to
(a) join a coalition of growing size, versus (b) establish a
database-to-database service link — which stays O(1) — and a
database-to-coalition link, which costs one write per member.
"""

from repro.bench import print_table
from repro.core.model import SourceDescription
from repro.core.registry import Registry
from repro.core.service_link import EndpointKind, ServiceLink

COALITION_SIZES = (2, 4, 8, 16, 32)


def _registry_with_coalition(members: int) -> Registry:
    registry = Registry()
    registry.create_coalition("Topic", "shared topic")
    for index in range(members):
        registry.add_source(SourceDescription(
            name=f"member{index}", information_type="shared topic"))
        registry.join(f"member{index}", "Topic")
    registry.add_source(SourceDescription(name="newcomer",
                                          information_type="fresh"))
    return registry


def test_s2_join_vs_link_overhead(benchmark):
    rows = []
    join_costs = []
    db_link_costs = []
    for size in COALITION_SIZES:
        # (a) strong coupling: join the coalition
        registry = _registry_with_coalition(size)
        before = registry.update_operations
        registry.join("newcomer", "Topic")
        join_cost = registry.update_operations - before
        join_costs.append(join_cost)

        # (b) loose coupling: database -> database service link
        registry = _registry_with_coalition(size)
        before = registry.update_operations
        registry.add_service_link(ServiceLink(
            EndpointKind.DATABASE, "newcomer",
            EndpointKind.DATABASE, "member0",
            information_type="fresh"))
        db_link_cost = registry.update_operations - before
        db_link_costs.append(db_link_cost)

        # (c) database -> coalition service link
        registry = _registry_with_coalition(size)
        before = registry.update_operations
        registry.add_service_link(ServiceLink(
            EndpointKind.DATABASE, "newcomer",
            EndpointKind.COALITION, "Topic",
            information_type="fresh"))
        coalition_link_cost = registry.update_operations - before

        rows.append([size, join_cost, db_link_cost, coalition_link_cost])

    print_table(
        "S2: co-database writes to establish sharing vs coalition size",
        ["coalition size", "join coalition", "db-db link",
         "db-coalition link"], rows)

    # Shape: joining scales with membership; a db-db link is constant
    # and always cheaper.
    assert join_costs[-1] > join_costs[0]
    assert len(set(db_link_costs)) == 1  # O(1)
    assert all(link < join for link, join
               in zip(db_link_costs, join_costs))

    def kernel():
        registry = _registry_with_coalition(8)
        registry.add_service_link(ServiceLink(
            EndpointKind.DATABASE, "newcomer",
            EndpointKind.DATABASE, "member0"))
        return registry.update_operations

    benchmark(kernel)


def test_s2_link_lookup_cost(benchmark, healthcare):
    """Reading a service link is a single metadata call on one
    co-database — the consumer needs no membership anywhere."""
    from repro.apps.healthcare import topology as topo
    system = healthcare.system
    client = system.codatabase_client(topo.MEDICARE)
    links = client.service_links()
    print_table("S2: links visible to the standalone Medicare database",
                ["label", "kind"],
                [[link.label, link.kind] for link in links])
    assert len(links) == 2
    assert client.calls == 1

    def kernel():
        return len(system.codatabase_client(topo.MEDICARE).service_links())

    assert benchmark(kernel) == 2
