"""S7 — Chaos: answer completeness and latency under injected failures.

The federation's value proposition degrades gracefully or not at all:
we sweep 0–30 % of the healthcare co-databases hard-dead (seeded dead
sets, never QUT — the user's home), bound every discovery by one total
deadline, and measure what fraction of the healthy-path-reachable
leads each sweep still returns, sequential vs parallel fan-out.

Expected shape: completeness over *healthy-path-reachable* leads stays
at 1.0 at every failure rate (the degraded report accounts for the
rest), latency stays within the deadline, and the parallel engine
absorbs per-site latency better than the sequential one.

Results persist to ``BENCH_faults.json`` (the S5 chaos numbers the
resilience work is accepted against).
"""

import json
import random
import time
from pathlib import Path

from repro.apps.healthcare import build_healthcare_system
from repro.apps.healthcare import topology as topo
from repro.bench import print_table
from repro.core.resilience import (HealthBoard, ResiliencePolicy,
                                   RetryPolicy)
from repro.orb.faults import ANY, FaultyTransport
from repro.orb.transport import InMemoryNetwork

SEED = 1999
RATES = (0.0, 0.1, 0.2, 0.3)
QUERIES = ("Medical Insurance", "Medical Research", "Superannuation")
DEADLINE = 2.0
GRACE = 0.5
LINK_LATENCY = 0.0008  # per-message injected WAN latency (seconds)


def _dead_set(rate: float) -> set[str]:
    candidates = [name for name in topo.ALL_DATABASES if name != topo.QUT]
    count = round(rate * len(topo.ALL_DATABASES))
    return set(random.Random(SEED).sample(candidates, count)) if count \
        else set()


def _healthy_paths():
    """query -> {lead name -> via path} from an unfaulted full sweep."""
    deployment = build_healthcare_system()
    engine = deployment.system.query_processor().discovery
    paths = {}
    for query in QUERIES:
        result = engine.discover(query, topo.QUT, stop_at_first=False,
                                 max_hops=6)
        paths[query] = {lead.name: list(lead.via) for lead in result.leads}
    engine.close()
    return paths


def _run_config(rate: float, parallel: bool, healthy_paths):
    dead = _dead_set(rate)
    faulty = FaultyTransport(InMemoryNetwork(), seed=SEED)
    policy = ResiliencePolicy(
        retry=RetryPolicy(max_attempts=2, base_delay=0.001,
                          max_delay=0.01, seed=SEED),
        health=HealthBoard(failure_threshold=3))
    deployment = build_healthcare_system(
        transport=faulty, resilience=policy, parallel_discovery=parallel,
        discovery_workers=6, isolate_sources=True)
    faulty.delay(ANY, latency=LINK_LATENCY)
    for name in dead:
        faulty.refuse(deployment.codatabase_endpoint(name))

    engine = deployment.system.query_processor().discovery
    expected = found = 0
    degraded_names = set()
    elapsed = 0.0
    try:
        for query in QUERIES:
            started = time.perf_counter()
            result = engine.discover(query, topo.QUT, stop_at_first=False,
                                     max_hops=6, deadline=DEADLINE)
            per_query = time.perf_counter() - started
            elapsed += per_query
            assert per_query <= DEADLINE + GRACE, \
                f"{per_query:.2f}s blew the {DEADLINE}s deadline"
            lead_names = {lead.name for lead in result.leads}
            for lead_name, via in healthy_paths[query].items():
                if set(via) & dead:
                    continue  # only reachable through a dead site
                expected += 1
                found += 1 if lead_name in lead_names else 0
            degraded_names.update(result.degraded.names())
            assert set(result.degraded.names()) <= dead
    finally:
        engine.close()

    return {
        "rate": rate,
        "mode": "parallel" if parallel else "sequential",
        "dead": sorted(dead),
        "completeness": found / expected if expected else 1.0,
        "leads_expected": expected,
        "leads_found": found,
        "ms_per_query": elapsed / len(QUERIES) * 1e3,
        "degraded_reported": sorted(degraded_names),
        "faults_fired": {kind: count
                         for kind, count in faulty.injected.items()
                         if count},
    }


def test_s7_chaos_completeness_and_latency(benchmark):
    healthy_paths = _healthy_paths()
    points = [_run_config(rate, parallel, healthy_paths)
              for rate in RATES for parallel in (False, True)]

    rows = [[f"{p['rate']:.0%}", p["mode"], len(p["dead"]),
             f"{p['completeness']:.2f}",
             f"{p['ms_per_query']:.1f}",
             ", ".join(p["degraded_reported"]) or "-"]
            for p in points]
    print_table(
        "S7: discovery under injected co-database failures "
        f"(deadline {DEADLINE}s, seed {SEED})",
        ["failure rate", "mode", "dead", "completeness",
         "ms/query", "degraded report"], rows)

    # Leads reachable through healthy paths are never lost.
    assert all(p["completeness"] == 1.0 for p in points)
    # Zero-failure runs report zero degradation...
    for p in points:
        if p["rate"] == 0.0:
            assert not p["degraded_reported"]
        else:
            # ...faulted runs name at least one dead co-database, and
            # never blame a healthy one.
            assert p["degraded_reported"]
            assert set(p["degraded_reported"]) <= set(p["dead"])

    # Parallel fan-out absorbs the injected per-site latency better at
    # every failure rate.
    by_rate = {}
    for p in points:
        by_rate.setdefault(p["rate"], {})[p["mode"]] = p
    speedups = {
        rate: pair["sequential"]["ms_per_query"]
        / pair["parallel"]["ms_per_query"]
        for rate, pair in by_rate.items()
    }
    assert sum(speedups.values()) / len(speedups) > 1.0

    out = {
        "benchmark": "S7 chaos: completeness/latency vs injected failures",
        "topology": {"databases": len(topo.ALL_DATABASES),
                     "queries": list(QUERIES),
                     "deadline_s": DEADLINE,
                     "link_latency_ms": LINK_LATENCY * 1e3,
                     "seed": SEED},
        "points": points,
        "mean_parallel_speedup": round(
            sum(speedups.values()) / len(speedups), 2),
    }
    path = Path(__file__).resolve().parents[1] / "BENCH_faults.json"
    path.write_text(json.dumps(out, indent=2) + "\n")

    benchmark(lambda: out["mean_parallel_speedup"])
