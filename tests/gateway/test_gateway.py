"""Gateway (DB-API / JDBC analogue) tests: cursors, drivers, URLs."""

import pytest

from repro.errors import (ConnectionClosed, DriverNotFound, GatewayError)
from repro.gateway import (DriverManager, LocalDriver, connect,
                           make_vendor_drivers, parse_url)
from repro.sql.engine import Database


@pytest.fixture()
def manager():
    db = Database("shop", dialect="oracle")
    db.execute("CREATE TABLE item (id INT PRIMARY KEY, name VARCHAR(20), "
               "price REAL)")
    db.executemany("INSERT INTO item VALUES (?, ?, ?)",
                   [[1, "pen", 1.5], [2, "book", 12.0], [3, "lamp", 40.0]])
    driver = LocalDriver("oracle", "oracle")
    driver.register_database(db)
    mgr = DriverManager()
    mgr.register(driver)
    return mgr


class TestUrls:
    def test_parse_simple(self):
        assert parse_url("jdbc:oracle:RBH") == ("oracle", None, "RBH")

    def test_parse_with_host(self):
        assert parse_url("jdbc:msql://h.example/med") == \
            ("msql", "h.example", "med")

    def test_malformed_url(self):
        with pytest.raises(GatewayError):
            parse_url("odbc:oracle:RBH")

    def test_no_driver_for_url(self, manager):
        with pytest.raises(DriverNotFound):
            manager.connect("jdbc:db2:Whatever")

    def test_unknown_database(self, manager):
        with pytest.raises(GatewayError):
            manager.connect("jdbc:oracle:Ghost")


class TestDrivers:
    def test_dialect_mismatch_rejected(self):
        driver = LocalDriver("oracle", "oracle")
        with pytest.raises(GatewayError):
            driver.register_database(Database("x", dialect="msql"))

    def test_duplicate_database_rejected(self):
        driver = LocalDriver("repro", None)
        driver.register_database(Database("x"))
        with pytest.raises(GatewayError):
            driver.register_database(Database("x"))

    def test_vendor_driver_set(self):
        drivers = make_vendor_drivers()
        assert set(drivers) == {"oracle", "msql", "db2", "sybase", "repro"}

    def test_generic_driver_accepts_any_dialect(self):
        driver = make_vendor_drivers()["repro"]
        driver.register_database(Database("any", dialect="db2"))
        connection = driver.connect("jdbc:repro:any")
        assert connection.banner.startswith("DB2")

    def test_database_names_listing(self, manager):
        driver = manager.drivers()[0]
        assert driver.database_names() == ["shop"]


class TestCursorProtocol:
    def test_description_and_rowcount(self, manager):
        cursor = manager.connect("jdbc:oracle:shop").cursor()
        assert cursor.rowcount == -1
        cursor.execute("SELECT id, name FROM item")
        assert [d[0] for d in cursor.description] == ["id", "name"]
        assert cursor.rowcount == 3

    def test_fetchone_sequence(self, manager):
        cursor = manager.connect("jdbc:oracle:shop").execute(
            "SELECT id FROM item ORDER BY id")
        assert cursor.fetchone() == (1,)
        assert cursor.fetchone() == (2,)
        assert cursor.fetchone() == (3,)
        assert cursor.fetchone() is None

    def test_fetchmany_default_arraysize(self, manager):
        cursor = manager.connect("jdbc:oracle:shop").execute(
            "SELECT id FROM item ORDER BY id")
        assert cursor.fetchmany() == [(1,)]
        cursor.arraysize = 2
        assert cursor.fetchmany() == [(2,), (3,)]

    def test_fetchall_consumes_remaining(self, manager):
        cursor = manager.connect("jdbc:oracle:shop").execute(
            "SELECT id FROM item ORDER BY id")
        cursor.fetchone()
        assert cursor.fetchall() == [(2,), (3,)]
        assert cursor.fetchall() == []

    def test_iteration(self, manager):
        cursor = manager.connect("jdbc:oracle:shop").execute(
            "SELECT name FROM item ORDER BY id")
        assert [row[0] for row in cursor] == ["pen", "book", "lamp"]

    def test_parameters(self, manager):
        cursor = manager.connect("jdbc:oracle:shop").execute(
            "SELECT name FROM item WHERE price > ?", [10])
        assert sorted(r[0] for r in cursor.fetchall()) == ["book", "lamp"]

    def test_executemany(self, manager):
        connection = manager.connect("jdbc:oracle:shop")
        cursor = connection.cursor()
        cursor.executemany("INSERT INTO item VALUES (?, ?, ?)",
                           [[4, "cup", 3.0], [5, "mat", 6.0]])
        assert cursor.rowcount == 2

    def test_fetch_before_execute_raises(self, manager):
        with pytest.raises(GatewayError):
            manager.connect("jdbc:oracle:shop").cursor().fetchall()

    def test_closed_cursor_rejected(self, manager):
        cursor = manager.connect("jdbc:oracle:shop").cursor()
        cursor.close()
        with pytest.raises(ConnectionClosed):
            cursor.execute("SELECT 1")

    def test_closed_connection_rejected(self, manager):
        connection = manager.connect("jdbc:oracle:shop")
        connection.close()
        with pytest.raises(ConnectionClosed):
            connection.cursor()

    def test_context_managers(self, manager):
        with manager.connect("jdbc:oracle:shop") as connection:
            with connection.cursor() as cursor:
                cursor.execute("SELECT COUNT(*) FROM item")
                assert cursor.fetchone()[0] >= 3
        with pytest.raises(ConnectionClosed):
            connection.cursor()

    def test_commit_rollback_through_connection(self, manager):
        connection = manager.connect("jdbc:oracle:shop")
        connection.execute("BEGIN")
        connection.execute("DELETE FROM item")
        connection.rollback()
        cursor = connection.execute("SELECT COUNT(*) FROM item")
        assert cursor.fetchone()[0] >= 3

    def test_module_level_connect_uses_default_manager(self):
        from repro.gateway import default_manager
        db = Database("global-test")
        driver = LocalDriver("repro", None)
        driver.register_database(db)
        default_manager.register(driver)
        connection = connect("jdbc:repro:global-test")
        assert connection.table_names() == []
