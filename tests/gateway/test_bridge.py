"""JDBC-over-IIOP bridge tests."""

import datetime

import pytest

from repro.errors import CatalogError, GatewayError
from repro.gateway import (DriverManager, RemoteDriver, result_from_wire,
                           result_to_wire, serve_database)
from repro.orb import (InMemoryNetwork, create_orb, ORBIXWEB, VISIBROKER,
                       start_naming_service)
from repro.sql.engine import Database
from repro.sql.result import ResultSet


@pytest.fixture()
def bridge():
    db = Database("Medicare", dialect="oracle")
    db.execute("CREATE TABLE enrol (id INT PRIMARY KEY, name VARCHAR(30), "
               "since DATE)")
    db.execute("INSERT INTO enrol VALUES (1, 'Alice', '1990-05-20'), "
               "(2, 'Bob', '1995-11-02')")
    network = InMemoryNetwork()
    server_orb = create_orb(ORBIXWEB, network, host="db.medicare.gov.au")
    client_orb = create_orb(VISIBROKER, network, host="client")
    __, naming = start_naming_service(server_orb)
    ior = serve_database(server_orb, db)
    naming.bind("webfindit/db/Medicare", ior)
    manager = DriverManager()
    manager.register(RemoteDriver(client_orb, naming))
    return manager, network, db


class TestRemoteConnection:
    def test_select_over_iiop(self, bridge):
        manager, network, __ = bridge
        connection = manager.connect("jdbc:iiop:Medicare")
        network.metrics.reset()
        cursor = connection.execute("SELECT name FROM enrol ORDER BY id")
        assert cursor.fetchall() == [("Alice",), ("Bob",)]
        assert network.metrics.messages_sent == 1

    def test_dates_cross_the_wire(self, bridge):
        manager, __, __ = bridge
        cursor = manager.connect("jdbc:iiop:Medicare").execute(
            "SELECT since FROM enrol WHERE id = 1")
        assert cursor.fetchone()[0] == datetime.date(1990, 5, 20)

    def test_params_cross_the_wire(self, bridge):
        manager, __, __ = bridge
        cursor = manager.connect("jdbc:iiop:Medicare").execute(
            "SELECT name FROM enrol WHERE id = ?", [2])
        assert cursor.fetchone() == ("Bob",)

    def test_dml_rowcount(self, bridge):
        manager, __, db = bridge
        cursor = manager.connect("jdbc:iiop:Medicare").execute(
            "INSERT INTO enrol VALUES (3, 'Carol', '1998-01-01')")
        assert cursor.rowcount == 1
        assert db.row_count("enrol") == 3

    def test_remote_metadata(self, bridge):
        manager, __, __ = bridge
        connection = manager.connect("jdbc:iiop:Medicare")
        assert connection.banner == "Oracle 8.0.5"
        assert connection.table_names() == ["enrol"]

    def test_remote_error_propagates(self, bridge):
        manager, __, __ = bridge
        connection = manager.connect("jdbc:iiop:Medicare")
        with pytest.raises(CatalogError):
            connection.execute("SELECT * FROM nonexistent")

    def test_unknown_remote_database(self, bridge):
        manager, __, __ = bridge
        from repro.errors import NamingError
        with pytest.raises(NamingError):
            manager.connect("jdbc:iiop:Ghost")


class TestWireFormat:
    def test_result_roundtrip(self):
        result = ResultSet(columns=["a", "b"],
                           rows=[(1, "x"), (None, datetime.date(1998, 1, 1))])
        revived = result_from_wire(result_to_wire(result))
        assert revived.columns == result.columns
        assert revived.rows == result.rows
        assert revived.rowcount == result.rowcount

    def test_empty_result_roundtrip(self):
        revived = result_from_wire(result_to_wire(ResultSet.empty(5)))
        assert revived.rowcount == 5
        assert revived.rows == []
