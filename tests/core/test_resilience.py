"""Failure injection: discovery survives vanished co-databases.

"individual sites join and leave these clusters at their own
discretion" (§1) — a source disappearing mid-resolution must not abort
the query.
"""

import pytest

from repro.core.discovery import CoDatabaseClient, DiscoveryEngine
from repro.core.model import SourceDescription
from repro.core.registry import Registry
from repro.core.service_link import EndpointKind, ServiceLink
from repro.errors import CommFailure, UnknownDatabase


def build_world():
    registry = Registry()
    for name, info in [("QUT", "Medical Research"),
                       ("RBH", "Research and Medical"),
                       ("RMIT", "Medical Research"),
                       ("Medibank", "Medical Insurance")]:
        registry.add_source(SourceDescription(name=name,
                                              information_type=info))
    registry.create_coalition("Research", "Medical Research")
    registry.create_coalition("Medical", "Medical")
    registry.create_coalition("Insurance", "Medical Insurance")
    registry.join("QUT", "Research")
    registry.join("RBH", "Research")
    registry.join("RMIT", "Research")
    registry.join("RBH", "Medical")
    registry.join("Medibank", "Insurance")
    registry.add_service_link(ServiceLink(
        EndpointKind.COALITION, "Medical", EndpointKind.COALITION,
        "Insurance", information_type="Medical Insurance"))
    return registry


def engine_with_failures(registry, dead: set[str]):
    def resolver(name: str) -> CoDatabaseClient:
        if name in dead:
            raise CommFailure(f"connection refused: {name}")
        return CoDatabaseClient.for_local(registry.codatabase(name))

    return DiscoveryEngine(resolver)


class TestDiscoveryResilience:
    def test_dead_neighbor_is_skipped(self):
        registry = build_world()
        engine = engine_with_failures(registry, dead={"RMIT"})
        result = engine.discover("Medical Insurance", "QUT")
        assert result.resolved
        assert result.best().name == "Insurance"
        assert result.unreachable == ["RMIT"]
        assert any("unreachable" in line for line in result.trace)

    def test_dead_link_contact_degrades_gracefully(self):
        registry = build_world()
        engine = engine_with_failures(registry, dead={"Medibank"})
        result = engine.discover("Medical Insurance", "QUT")
        # The link lead itself still resolves (RBH's co-database knows
        # it); only deeper exploration through Medibank is lost.
        assert result.resolved
        assert "Medibank" in result.unreachable or result.best().score == 1.0

    def test_dead_start_database_raises(self):
        registry = build_world()
        engine = engine_with_failures(registry, dead={"QUT"})
        with pytest.raises(CommFailure):
            engine.discover("anything", "QUT")

    def test_all_neighbors_dead_still_answers_locally(self):
        registry = build_world()
        engine = engine_with_failures(registry,
                                      dead={"RBH", "RMIT", "Medibank"})
        result = engine.discover("Medical Research", "QUT")
        assert result.resolved  # local coalition answers
        assert result.best().name == "Research"

    def test_unreachable_counted_not_contacted(self):
        registry = build_world()
        engine = engine_with_failures(registry, dead={"RMIT", "RBH"})
        result = engine.discover("Medical Insurance", "QUT",
                                 stop_at_first=False, max_hops=3)
        assert set(result.unreachable) == {"RMIT", "RBH"}
        # unreachable nodes add no metadata calls
        assert result.codatabases_contacted >= 1


class TestSystemLevelFailure:
    def test_deactivated_codatabase_skipped(self, healthcare):
        """Kill one co-database servant in the live deployment; the
        §2.3 walkthrough still resolves through RBH."""
        from repro.apps.healthcare import topology as topo
        system = healthcare.system
        # RMIT's co-database goes away (simulate the site leaving).
        ior = system.naming.resolve(f"webfindit/codb/{topo.RMIT}")
        victim_orb = next(orb for orb in system.orbs()
                          if orb.endpoint == ior.primary.endpoint)
        victim_orb.deactivate(ior)
        try:
            browser = healthcare.browser(topo.QUT)
            result = browser.find("Medical Insurance")
            assert result.data.resolved
            assert topo.RMIT in result.data.unreachable
        finally:
            # Restore for other session-scoped tests.
            from repro.core.codatabase import (CODATABASE_INTERFACE,
                                               CoDatabaseServant)
            codb = system.registry.codatabase(topo.RMIT)
            new_ior = victim_orb.activate(
                CoDatabaseServant(codb), CODATABASE_INTERFACE,
                object_name=f"codb-{topo.RMIT}-revived")
            system.naming.rebind(f"webfindit/codb/{topo.RMIT}", new_ior)
            system._ior_cache.pop(f"codb/{topo.RMIT}", None)

    def test_missing_wrapper_reported(self, healthcare):
        with pytest.raises(UnknownDatabase):
            healthcare.system.wrapper_client("Vanished Hospital")
