"""Registry tests: the locality rule for co-database propagation."""

import pytest

from repro.core.model import SourceDescription
from repro.core.registry import Registry
from repro.core.service_link import EndpointKind, ServiceLink
from repro.errors import (MembershipError, UnknownCoalition, UnknownDatabase,
                          WebFinditError)


def description(name, info="Medical"):
    return SourceDescription(name=name, information_type=info,
                             location=f"{name}.net")


@pytest.fixture()
def registry():
    registry = Registry()
    for name in ("A", "B", "C", "D"):
        registry.add_source(description(name))
    registry.create_coalition("Med", "Medical")
    registry.create_coalition("Ins", "Insurance")
    return registry


class TestSources:
    def test_add_source_creates_codatabase(self, registry):
        codb = registry.codatabase("A")
        assert codb.owner_name == "A"
        assert codb.local_description.name == "A"

    def test_duplicate_source_rejected(self, registry):
        with pytest.raises(WebFinditError):
            registry.add_source(description("A"))

    def test_missing_source(self, registry):
        with pytest.raises(UnknownDatabase):
            registry.source("Z")

    def test_remove_source_leaves_coalitions(self, registry):
        registry.join("A", "Med")
        registry.join("B", "Med")
        registry.remove_source("A")
        assert not registry.coalition("Med").has_member("A")
        # B's co-database no longer lists A
        members = registry.codatabase("B").instances_of("Med")
        assert {d.name for d in members} == {"B"}

    def test_advertise_updates_peers(self, registry):
        registry.join("A", "Med")
        registry.join("B", "Med")
        updated = SourceDescription(name="A", information_type="New Topic",
                                    location="A.net")
        registry.advertise(updated)
        seen = registry.codatabase("B").describe_instance("A")
        assert seen.information_type == "New Topic"

    def test_advertise_new_source_creates_it(self):
        registry = Registry()
        registry.advertise(description("Fresh"))
        assert registry.codatabase("Fresh") is not None


class TestMembershipPropagation:
    def test_join_teaches_both_sides(self, registry):
        registry.join("A", "Med")
        registry.join("B", "Med")
        a_codb = registry.codatabase("A")
        b_codb = registry.codatabase("B")
        assert {d.name for d in a_codb.instances_of("Med")} == {"A", "B"}
        assert {d.name for d in b_codb.instances_of("Med")} == {"A", "B"}
        assert a_codb.memberships == ["Med"]

    def test_nonmember_learns_nothing(self, registry):
        registry.join("A", "Med")
        c_codb = registry.codatabase("C")
        assert not c_codb.object_database.schema.has_class("Med")
        assert c_codb.find_coalitions("Medical") == []

    def test_double_join_rejected(self, registry):
        registry.join("A", "Med")
        with pytest.raises(MembershipError):
            registry.join("A", "Med")

    def test_leave_forgets_everywhere(self, registry):
        registry.join("A", "Med")
        registry.join("B", "Med")
        registry.leave("A", "Med")
        assert registry.codatabase("A").memberships == []
        assert {d.name for d in
                registry.codatabase("B").instances_of("Med")} == {"B"}

    def test_leave_non_member(self, registry):
        with pytest.raises(MembershipError):
            registry.leave("A", "Med")

    def test_join_unknown_coalition(self, registry):
        with pytest.raises(UnknownCoalition):
            registry.join("A", "Ghost")

    def test_hierarchy_propagates_to_parent_members(self, registry):
        registry.join("A", "Med")
        registry.create_coalition("Cardio", "cardiology", parent="Med")
        # A (member of the parent) sees the specialization.
        assert registry.codatabase("A").subclasses_of("Med") == ["Cardio"]

    def test_joiner_learns_existing_children(self, registry):
        registry.create_coalition("Cardio", "cardiology", parent="Med")
        registry.join("A", "Med")
        assert registry.codatabase("A").subclasses_of("Med") == ["Cardio"]

    def test_join_child_registers_ancestor_chain(self, registry):
        registry.create_coalition("Cardio", "cardiology", parent="Med")
        registry.join("A", "Cardio")
        schema = registry.codatabase("A").object_database.schema
        assert schema.is_subclass("Cardio", "Med")


class TestCoalitionLifecycle:
    def test_duplicate_coalition_rejected(self, registry):
        with pytest.raises(WebFinditError):
            registry.create_coalition("Med", "again")

    def test_unknown_parent_rejected(self, registry):
        with pytest.raises(UnknownCoalition):
            registry.create_coalition("X", "x", parent="Ghost")

    def test_dissolve_evicts_members_and_links(self, registry):
        registry.join("A", "Med")
        registry.add_service_link(ServiceLink(
            EndpointKind.COALITION, "Med", EndpointKind.COALITION, "Ins",
            information_type="Insurance"))
        registry.dissolve_coalition("Med")
        assert "Med" not in registry.coalition_names()
        assert registry.codatabase("A").memberships == []
        assert registry.service_links() == []

    def test_dissolve_with_children_rejected(self, registry):
        registry.create_coalition("Cardio", "cardiology", parent="Med")
        with pytest.raises(WebFinditError):
            registry.dissolve_coalition("Med")


class TestServiceLinks:
    def test_link_contact_defaults_to_first_member(self, registry):
        registry.join("A", "Ins")
        registry.add_service_link(ServiceLink(
            EndpointKind.COALITION, "Med", EndpointKind.COALITION, "Ins"))
        assert registry.service_links()[0].contact == "A"

    def test_link_contact_for_database_endpoint(self, registry):
        registry.add_service_link(ServiceLink(
            EndpointKind.DATABASE, "A", EndpointKind.DATABASE, "B"))
        assert registry.service_links()[0].contact == "B"

    def test_link_audience_is_members_and_endpoints(self, registry):
        registry.join("A", "Med")
        registry.join("B", "Ins")
        registry.add_service_link(ServiceLink(
            EndpointKind.COALITION, "Med", EndpointKind.COALITION, "Ins"))
        assert len(registry.codatabase("A").service_links()) == 1
        assert len(registry.codatabase("B").service_links()) == 1
        assert registry.codatabase("C").service_links() == []

    def test_joiner_inherits_coalition_links(self, registry):
        registry.join("A", "Med")
        registry.add_service_link(ServiceLink(
            EndpointKind.DATABASE, "C", EndpointKind.COALITION, "Med"))
        registry.join("B", "Med")  # joins after the link exists
        assert len(registry.codatabase("B").service_links()) == 1

    def test_duplicate_link_rejected(self, registry):
        link = ServiceLink(EndpointKind.DATABASE, "A",
                           EndpointKind.DATABASE, "B")
        registry.add_service_link(link)
        with pytest.raises(WebFinditError):
            registry.add_service_link(link)

    def test_remove_link_updates_audience(self, registry):
        registry.join("A", "Med")
        link = ServiceLink(EndpointKind.DATABASE, "C",
                           EndpointKind.COALITION, "Med")
        registry.add_service_link(link)
        registry.remove_service_link(link)
        assert registry.codatabase("A").service_links() == []
        assert registry.codatabase("C").service_links() == []

    def test_link_with_unknown_endpoint(self, registry):
        with pytest.raises(UnknownDatabase):
            registry.add_service_link(ServiceLink(
                EndpointKind.DATABASE, "Ghost", EndpointKind.COALITION,
                "Med"))


class TestAccounting:
    def test_update_operations_grow_with_membership(self, registry):
        before = registry.update_operations
        registry.join("A", "Med")
        first_cost = registry.update_operations - before
        registry.join("B", "Med")
        second_cost = registry.update_operations - before - first_cost
        # Joining a larger coalition costs more writes.
        assert second_cost > first_cost

    def test_summary_counts(self, registry):
        registry.join("A", "Med")
        registry.join("B", "Med")
        summary = registry.summary()
        assert summary["sources"] == 4
        assert summary["coalitions"] == 2
        assert summary["memberships"] == 2
