"""Query-processor and browser tests against the healthcare deployment.

These run the full stack: WebTassili text -> processor -> GIOP over the
in-memory fabric -> co-database / wrapper servants -> native engines.
"""

import pytest

from repro.apps.healthcare import topology as topo
from repro.errors import (UnknownCoalition, UnknownDatabase, WebFinditError)
from repro.core.query_processor import Session


@pytest.fixture()
def browser(healthcare):
    return healthcare.browser(topo.QUT)


class TestExploration:
    def test_find_local_coalition(self, browser):
        result = browser.find("Medical Research")
        assert result.kind == "coalitions"
        assert result.data.best().name == "Research"
        assert "Research" in result.text

    def test_find_via_link(self, browser):
        result = browser.find("Medical Insurance")
        assert result.data.best().name == topo.MEDICAL_INSURANCE
        assert "service link" in result.text

    def test_find_nothing(self, browser):
        result = browser.find("astrophysics")
        assert not result.data.resolved
        assert "none found" in result.text

    def test_connect_local_coalition(self, browser):
        result = browser.connect_coalition("Research")
        assert browser.session.current_coalition == "Research"
        assert browser.session.metadata_source == topo.QUT
        assert "entry point" in result.text

    def test_connect_remote_coalition_moves_entry(self, browser):
        browser.connect_coalition(topo.MEDICAL_INSURANCE)
        assert browser.session.metadata_source in (topo.MEDIBANK, topo.MBF)

    def test_connect_unknown_coalition(self, browser):
        with pytest.raises(UnknownCoalition):
            browser.connect_coalition("Astrology")

    def test_connect_database(self, browser):
        result = browser.connect_database(topo.RBH)
        assert browser.session.entry_database == topo.RBH
        assert "dba.icis.qut.edu.au" in result.text

    def test_instances_of_class(self, browser):
        result = browser.instances("Research")
        names = {d.name for d in result.data}
        assert names == {topo.QUT, topo.RMIT, topo.QLD_CANCER, topo.RBH}

    def test_instances_unknown_class(self, browser):
        with pytest.raises(UnknownCoalition):
            browser.instances("Ghost")

    def test_subclasses_empty(self, browser):
        assert browser.subclasses("Research").data == []

    def test_documentation_includes_html(self, browser):
        result = browser.documentation(topo.RBH, "Research")
        formats = {d["format"] for d in result.data["documents"]}
        assert formats == {"html", "text"}
        assert "<html>" in result.text

    def test_access_information(self, browser):
        result = browser.access_information(topo.RBH)
        assert result.data.location == "dba.icis.qut.edu.au"
        assert "WebTassiliOracle" in result.text
        assert "ResearchProjects, PatientHistory" in result.text

    def test_interface_rendering(self, browser):
        result = browser.interface(topo.RBH)
        assert "Type ResearchProjects {" in result.text
        assert "function real Funding(title);" in result.text

    def test_service_links_of_coalition(self, browser):
        browser.connect_coalition(topo.MEDICAL)
        result = browser.submit(
            "Display Service Links of Coalition Medical")
        labels = {link.label for link in result.data}
        assert "Medical_to_MedicalInsurance" in labels
        assert len(labels) == 7  # seven links touch Medical in Figure 1

    def test_unknown_instance(self, browser):
        with pytest.raises(UnknownDatabase):
            browser.access_information("Atlantis General")


class TestDataAccess:
    def test_fetch_native_sql(self, browser):
        result = browser.fetch(topo.RBH, "SELECT * FROM MedicalStudent")
        assert result.data.rowcount == 12
        assert "StudentId" in result.text

    def test_invoke_scalar_function(self, browser):
        result = browser.invoke(topo.RBH, "ResearchProjects", "Funding",
                                "AIDS and drugs")
        assert result.data == 1250000.0

    def test_invoke_rows_function(self, browser):
        result = browser.invoke(topo.MEDIBANK, "Claims", "ClaimsByStatus",
                                "paid")
        assert result.data.rowcount > 0

    def test_invoke_oodb_function(self, browser):
        result = browser.invoke(topo.PRINCE_CHARLES, "CardiacCare",
                                "PatientsInWard", "Cardiac A")
        assert isinstance(result.data, list)

    def test_native_oql(self, browser):
        result = browser.fetch(topo.AMBULANCE,
                               "SELECT callout_no FROM Callout "
                               "WHERE priority = 1")
        assert isinstance(result.data, list)

    def test_wrong_dialect_type_fails_remotely(self, browser):
        from repro.errors import SqlError, ReproError
        with pytest.raises(ReproError):
            browser.fetch(topo.RBH, "SELECT * FROM no_such_table")


class TestSessionAndTranscript:
    def test_history_accumulates(self, browser):
        browser.find("Medical Research")
        browser.instances("Research")
        assert len(browser.session.history) == 2

    def test_transcript_renders(self, browser):
        browser.find("Medical Research")
        text = browser.render_transcript()
        assert text.startswith("webtassili> ")
        assert "Research" in text

    def test_information_tree_shows_coalitions(self, browser):
        tree = browser.information_tree()
        assert "+ Research" in tree
        assert f"- {topo.RBH}" in tree

    def test_maintenance_requires_registry(self, healthcare):
        from repro.core.query_processor import QueryProcessor
        processor = QueryProcessor(
            resolver=healthcare.system.codatabase_client,
            wrapper_for=healthcare.system.wrapper_client,
            registry=None)
        session = Session(home_database=topo.QUT)
        with pytest.raises(WebFinditError):
            processor.execute("Create Coalition X With Information 'x'",
                              session)


class TestMaintenanceStatements:
    """Mutating statements run on a private system."""

    @pytest.fixture()
    def fresh(self):
        from repro.apps.healthcare import build_healthcare_system
        return build_healthcare_system()

    def test_create_and_dissolve_coalition(self, fresh):
        browser = fresh.browser(topo.QUT)
        browser.submit("Create Coalition Telehealth With Information "
                       "'remote consultations'")
        assert "Telehealth" in fresh.system.registry.coalition_names()
        browser.submit("Dissolve Coalition Telehealth")
        assert "Telehealth" not in fresh.system.registry.coalition_names()

    def test_join_and_leave(self, fresh):
        browser = fresh.browser(topo.QUT)
        browser.submit("Create Coalition Emergency With Information "
                       "'emergency transport'")
        browser.submit("Join Database Ambulance To Coalition Emergency")
        assert fresh.system.registry.coalition("Emergency").members == \
            [topo.AMBULANCE]
        browser.submit("Leave Database Ambulance From Coalition Emergency")
        assert fresh.system.registry.coalition("Emergency").members == []

    def test_create_and_drop_service_link(self, fresh):
        browser = fresh.browser(topo.QUT)
        browser.submit("Create Service Link From Database 'QUT Research' "
                       "To Database Medicare With Description 'benefits'")
        labels = {l.label for l in fresh.system.registry.service_links()}
        assert "QUTResearch_to_Medicare" in labels
        browser.submit("Drop Service Link From Database 'QUT Research' "
                       "To Database Medicare")
        labels = {l.label for l in fresh.system.registry.service_links()}
        assert "QUTResearch_to_Medicare" not in labels

    def test_advertise_renders_paper_block(self, fresh):
        browser = fresh.browser(topo.QUT)
        result = browser.submit(
            "Advertise Source New Clinic Information 'walk-in care' "
            "Location 'clinic.net' Interface Visits")
        assert result.text.startswith("Information Source New Clinic {")
        assert fresh.system.registry.source("New Clinic") is not None


class TestFindSources:
    def test_find_sources_local(self, browser):
        result = browser.submit(
            "Find Sources With Information Medical Research")
        names = {d.name for d in result.data}
        assert topo.QUT in names and topo.RMIT in names
        assert result.kind == "sources"

    def test_find_sources_via_link(self, browser):
        result = browser.submit(
            "Find Sources With Information 'Medical Insurance'")
        names = {d.name for d in result.data}
        assert topo.MEDIBANK in names and topo.MBF in names
        # full matches sort before partial ones
        assert result.data[0].name in (topo.MEDIBANK, topo.MBF)

    def test_find_sources_miss(self, browser):
        result = browser.submit(
            "Find Sources With Information 'quantum computing'")
        assert result.data == []
        assert "(none found)" in result.text


class TestCoalitionInvoke:
    def test_fan_out_over_exporting_members(self, browser):
        result = browser.submit(
            "Invoke Funding Of Type ResearchProjects On Coalition Research "
            "With ('AIDS and drugs')")
        assert result.kind == "federated"
        assert result.data["results"] == {topo.RBH: 1250000.0}
        assert result.data["errors"] == {}

    def test_members_without_type_skipped(self, browser):
        result = browser.submit(
            "Invoke TrialFunding Of Type Trials On Coalition Research "
            "With ('Trial QC-001')")
        # Only Queensland Cancer Fund exports Trials.
        assert set(result.data["results"]) == {topo.QLD_CANCER}

    def test_no_exporting_member(self, browser):
        result = browser.submit(
            "Invoke X Of Type GhostType On Coalition Research With ()")
        assert result.data["results"] == {}
        assert "no member exports type" in result.text

    def test_explicit_on_database_still_single(self, browser):
        result = browser.submit(
            "Invoke Funding Of Type ResearchProjects On Database "
            "'Royal Brisbane Hospital' With ('AIDS and drugs')")
        assert result.kind == "value"
        assert result.data == 1250000.0


class TestStructureSearch:
    """The paper's 'search for an information type while providing its
    structure' (§2, manipulation operations)."""

    def test_sources_filtered_by_structure(self, browser):
        result = browser.submit(
            "Find Sources With Information 'Medical Research' "
            "Structure (Funding)")
        assert [d.name for d in result.data] == [topo.RBH]

    def test_structure_matches_attribute_paths(self, browser):
        result = browser.submit(
            "Find Sources With Information 'Medical Research' "
            "Structure (ResearchProjects.Title)")
        assert [d.name for d in result.data] == [topo.RBH]

    def test_structure_matches_last_segment(self, browser):
        # RMIT also exports a Project.Title, so both research sources
        # qualify when only the bare segment is given.
        result = browser.submit(
            "Find Sources With Information 'Medical Research' "
            "Structure (Title)")
        names = {d.name for d in result.data}
        assert topo.RBH in names and topo.RMIT in names

    def test_all_elements_must_match(self, browser):
        result = browser.submit(
            "Find Sources With Information 'Medical Research' "
            "Structure (Funding, NoSuchThing)")
        assert result.data == []

    def test_coalitions_filtered_by_structure(self, browser):
        hit = browser.submit(
            "Find Coalitions With Information Medical Research "
            "Structure (Funding)")
        assert hit.data.resolved
        miss = browser.submit(
            "Find Coalitions With Information Medical Research "
            "Structure (NoSuchAttr)")
        assert not miss.data.resolved

    def test_qualifier_rendered(self, browser):
        result = browser.submit(
            "Find Sources With Information Research Structure (Funding)")
        assert "structure (Funding)" in result.text


class TestDisplayStructure:
    def test_structure_rendered(self, browser):
        result = browser.submit(
            "Display Structure of Instance Royal Brisbane Hospital")
        assert result.kind == "structure"
        assert "ResearchProjects.Title" in result.data
        assert "attribute ResearchProjects.Title" in result.text
        assert "function Funding" in result.text

    def test_structure_of_object_source(self, browser):
        result = browser.submit("Display Structure of Instance AMP")
        assert "Member.name" in result.data

    def test_structure_unknown_instance(self, browser):
        with pytest.raises(UnknownDatabase):
            browser.submit("Display Structure of Instance Ghost Hospital")
