"""Chaos suite for the shared cache tier.

Three failure families, all on the path between registry shards, the
cache-tier servant, and tiered co-database clients:

* **Races** — concurrent mutate-on-one-shard / read-through-on-another
  must never serve an entry older than the pre-mutation epoch once the
  invalidation broadcast has landed, and a late read-through fill of
  pre-mutation data must be refused by its epoch floor rather than
  resurrected.
* **Outages** — killing the cache-tier server degrades every tiered
  client to direct GIOP (counted in ``cache_bypassed``); queries stay
  complete (identical leads to an untiered deployment, nothing
  degraded).  A restarted tier comes back cold and refills.
* **Lossy broadcast** — with a seeded :class:`FaultyTransport`
  dropping/delaying the invalidation path, a stale read is only ever
  possible while the failed broadcast is *tracked* in
  ``pending_floors`` (bounded, observable staleness — never silent),
  and healing plus one flush makes the federation fresh again.

``WEBFINDIT_SHARDS`` sets the shard count (CI sweeps {1, 4}).
"""

import os
import threading

import pytest

from repro.core.cachetier import TOMBSTONE, CacheTierServant
from repro.core.model import SourceDescription
from repro.core.system import WebFinditSystem
from repro.oodb.database import ObjectDatabase
from repro.orb.faults import FaultyTransport
from repro.orb.transport import InMemoryNetwork

from tests.core.test_discovery_properties import lead_fingerprint

SHARDS = int(os.environ.get("WEBFINDIT_SHARDS", "4"))

SOURCES = ("Alpha", "Beta", "Gamma", "Delta", "Epsilon", "Zeta")


def build_system(transport=None, cache_tier=True):
    system = WebFinditSystem(transport=transport, shards=SHARDS,
                             cache_tier=cache_tier)
    for name in SOURCES:
        database = ObjectDatabase(name=name.lower(), product="ObjectStore")
        system.register_object_source(database, SourceDescription(
            name=name, information_type="cardiology",
            location=f"{name.lower()}.net"))
    system.create_coalition("Cardio", "cardiology")
    for name in SOURCES[:4]:
        system.join(name, "Cardio")
    return system


def epsilon_visible_from(system, observer):
    """Does *observer*'s co-database (read through the tier) currently
    list Epsilon as a Cardio member?"""
    for coalition in system.codatabase_client(observer).known_coalitions():
        if coalition["name"] == "Cardio":
            return "Epsilon" in coalition["members"]
    return False


def pending_floors(system):
    tier = system.metrics()["cache_tier"]
    return sum(entry["pending_floors"] for entry in tier["broadcasters"])


# ---------------------------------------------------------------------------
# Races
# ---------------------------------------------------------------------------


class TestInvalidationRaces:
    def test_reads_after_mutation_are_never_stale(self):
        """The bounded-staleness contract: once a mutation (and its
        synchronous invalidation broadcast) returns, every read-through
        observes the post-mutation state — under concurrent reader
        threads racing their own fills against the floor updates."""
        system = build_system()
        stop = threading.Event()
        reader_errors = []

        def hammer():
            while not stop.is_set():
                try:
                    client = system.codatabase_client("Alpha")
                    client.memberships()
                    client.known_coalitions()
                    system.codatabase_client("Epsilon").memberships()
                except Exception as exc:  # noqa: BLE001 — reported below
                    reader_errors.append(exc)
                    return
        threads = [threading.Thread(target=hammer) for __ in range(4)]
        for thread in threads:
            thread.start()
        try:
            for round_index in range(24):
                joined = round_index % 2 == 0
                if joined:
                    system.join("Epsilon", "Cardio")
                else:
                    system.leave("Epsilon", "Cardio")
                assert epsilon_visible_from(system, "Alpha") is joined
                memberships = system.codatabase_client(
                    "Epsilon").memberships()
                assert ("Cardio" in memberships) is joined
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        assert not reader_errors
        stats = system.cache_tier_servant.stats()
        assert stats["invalidation_batches"] > 0
        assert pending_floors(system) == 0

    def test_late_fill_below_floor_is_refused(self):
        """A read-through that fetched pre-mutation data races the
        invalidation and arrives late: the floor refuses the store, so
        stale data cannot be resurrected with unbounded lifetime."""
        servant = CacheTierServant()
        # The mutation's broadcast landed first: floor is epoch 3.
        servant.invalidate("shard1", 1, {"Alpha": 3})
        assert servant.store("Alpha", "memberships", [],
                             ["pre-mutation"], 2) is False
        assert servant.stale_stores_refused == 1
        assert servant.lookup("Alpha", "memberships", []) \
            == {"hit": False, "value": None}
        # A fill at (or above) the floor is the fresh one: accepted.
        assert servant.store("Alpha", "memberships", [],
                             ["post-mutation"], 3) is True
        reply = servant.lookup("Alpha", "memberships", [])
        assert reply == {"hit": True, "value": ["post-mutation"]}

    def test_replayed_broadcast_batches_are_idempotent(self):
        """A retried (duplicated) broadcast cannot regress a floor:
        per-origin sequence numbers deduplicate replays."""
        servant = CacheTierServant()
        servant.invalidate("shard0", 2, {"Alpha": 4})
        assert servant.store("Alpha", "memberships", [], ["v4"], 4)
        # Replay of an old batch (same origin, seq <= applied): no-op.
        servant.invalidate("shard0", 2, {"Alpha": 9})
        assert servant.lookup("Alpha", "memberships", [])["hit"] is True
        # A genuinely newer batch applies.
        servant.invalidate("shard0", 3, {"Alpha": 9})
        assert servant.lookup("Alpha", "memberships", [])["hit"] is False

    def test_tombstone_blocks_resurrection_after_remove(self):
        servant = CacheTierServant()
        assert servant.store("Gone", "memberships", [], ["Cardio"], 3)
        servant.invalidate("shard2", 1, {"Gone": TOMBSTONE})
        assert servant.lookup("Gone", "memberships", []) \
            == {"hit": False, "value": None}
        assert servant.store("Gone", "memberships", [],
                             ["Cardio"], 99) is False

    def test_remove_source_pushes_a_tombstone(self):
        system = build_system()
        system.codatabase_client("Zeta").memberships()  # warm an entry
        system.registry.remove_source("Zeta")
        floors = system.cache_tier_servant._floors
        assert floors.get("Zeta") == TOMBSTONE
        assert pending_floors(system) == 0


# ---------------------------------------------------------------------------
# Outages
# ---------------------------------------------------------------------------


class TestTierOutage:
    def test_kill_degrades_to_direct_giop_with_full_completeness(self):
        system = build_system()
        reference = build_system(cache_tier=False)
        processor = system.query_processor()
        baseline = reference.query_processor()

        warm = processor.discovery.discover("cardiology", "Alpha")
        assert warm.cache_bypassed == 0 and warm.cache_misses > 0

        system.kill_cache_tier()
        degraded = processor.discovery.discover("cardiology", "Alpha")
        expected = baseline.discovery.discover("cardiology", "Alpha")
        # Completeness 1.00: identical leads, nothing skipped, nothing
        # unreachable — only the optimisation is gone.
        assert lead_fingerprint(degraded) == lead_fingerprint(expected)
        assert not degraded.partial
        assert degraded.unreachable == []
        assert degraded.cache_bypassed > 0
        assert degraded.cache_hits == 0
        assert system.metrics()["cache_tier"]["alive"] is False

    def test_restart_comes_back_cold_then_serves_hits(self):
        system = build_system()
        processor = system.query_processor()
        processor.discovery.discover("cardiology", "Alpha")
        system.kill_cache_tier()
        system.restart_cache_tier()
        refill = processor.discovery.discover("cardiology", "Alpha")
        assert refill.cache_bypassed == 0
        assert refill.cache_misses > 0  # the replacement starts empty
        warm = processor.discovery.discover("cardiology", "Alpha")
        assert warm.cache_hits > 0
        assert warm.cache_bypassed == 0
        assert system.metrics()["cache_tier"]["restarts"] == 1

    def test_mutations_during_outage_are_tracked_then_flushed(self):
        system = build_system()
        system.codatabase_client("Alpha").known_coalitions()  # warm
        system.kill_cache_tier()
        system.join("Epsilon", "Cardio")  # broadcast cannot be delivered
        tier = system.metrics()["cache_tier"]
        assert pending_floors(system) > 0
        assert any(entry["failed_broadcasts"] > 0
                   for entry in tier["broadcasters"])
        system.restart_cache_tier()  # flushes the pending floors
        assert pending_floors(system) == 0
        assert epsilon_visible_from(system, "Alpha") is True

    def test_kill_requires_a_deployed_tier(self):
        from repro.errors import WebFinditError
        system = build_system(cache_tier=False)
        with pytest.raises(WebFinditError):
            system.kill_cache_tier()
        with pytest.raises(WebFinditError):
            system.restart_cache_tier()


# ---------------------------------------------------------------------------
# Lossy broadcast path
# ---------------------------------------------------------------------------


@pytest.mark.chaos
class TestLossyBroadcastPath:
    def test_staleness_is_bounded_and_observable_under_drops(
            self, chaos_seed):
        """With the invalidation path dropping and delaying requests, a
        post-mutation read may be stale ONLY while the failed broadcast
        is tracked in ``pending_floors``; heal + flush restores
        freshness everywhere."""
        faulty = FaultyTransport(InMemoryNetwork(), seed=chaos_seed)
        system = build_system(transport=faulty)
        tier_endpoint = system.naming.resolve(
            "webfindit/cache/tier0").primary.endpoint
        system.codatabase_client("Alpha").known_coalitions()  # warm

        faulty.delay(tier_endpoint, latency=0.0005, jitter=0.001)
        faulty.drop_requests(tier_endpoint, rate=0.45)
        silent_staleness = 0
        for round_index in range(16):
            joined = round_index % 2 == 0
            if joined:
                system.join("Epsilon", "Cardio")
            else:
                system.leave("Epsilon", "Cardio")
            observed = epsilon_visible_from(system, "Alpha")
            if observed is not joined:
                # Stale is tolerated only when tracked: the broadcast
                # that failed must be sitting in pending_floors.
                if pending_floors(system) == 0:
                    silent_staleness += 1
        assert silent_staleness == 0
        assert faulty.injected["drop_request"] > 0

        faulty.heal()
        for broadcaster in system._broadcasters:
            assert broadcaster.flush() is True
        assert pending_floors(system) == 0
        final = round_index % 2 == 0  # noqa: F821 — bound by the loop
        assert epsilon_visible_from(system, "Alpha") is final

    def test_broadcast_retries_ride_through_transient_drops(
            self, chaos_seed):
        """A drop window shorter than the retry budget is invisible:
        the broadcaster's retries deliver every floor batch."""
        faulty = FaultyTransport(InMemoryNetwork(), seed=chaos_seed)
        system = build_system(transport=faulty)
        tier_endpoint = system.naming.resolve(
            "webfindit/cache/tier0").primary.endpoint
        system.codatabase_client("Alpha").known_coalitions()  # warm
        # Exactly one drop, then the endpoint is clean again: attempt 1
        # fails, the in-line retry succeeds.
        faulty.drop_requests(tier_endpoint, rate=1.0)
        calls_before = faulty.injected["drop_request"]
        system.join("Epsilon", "Cardio")
        faulty.heal(tier_endpoint)
        assert faulty.injected["drop_request"] > calls_before
        for broadcaster in system._broadcasters:
            broadcaster.flush()
        assert pending_floors(system) == 0
        assert epsilon_visible_from(system, "Alpha") is True
