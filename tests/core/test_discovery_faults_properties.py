"""Property test: the parallel engine under seeded faults.

A co-database dying mid-depth must not wedge the executor or drop
sibling results: over random topologies and random dead sets, the
parallel engine's leads, unreachable list, and degraded report must
match the sequential engine's exactly — and the engine must stay
usable for a second discovery afterwards.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.scale import build_scaled_space
from repro.core.discovery import DiscoveryEngine
from repro.errors import CommFailure


@st.composite
def fault_scenarios(draw):
    databases = draw(st.integers(min_value=4, max_value=14))
    coalitions = draw(st.integers(min_value=2,
                                  max_value=min(4, databases)))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    # Which databases fail, and how: refused at resolve time, or dying
    # mid-consultation (resolve succeeds, metadata reads then fail).
    dead_at_resolve = draw(st.sets(
        st.integers(min_value=1, max_value=databases - 1), max_size=4))
    dead_mid_consult = draw(st.sets(
        st.integers(min_value=1, max_value=databases - 1), max_size=4))
    return (databases, coalitions, seed,
            dead_at_resolve, dead_mid_consult - dead_at_resolve)


class _DyingClient:
    """A co-database client whose every read fails (post-resolve)."""

    def __init__(self, name):
        self.name = name
        self.calls = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_bypassed = 0

    def __getattr__(self, operation):
        def fail(*__args, **__kwargs):
            self.calls += 1
            raise CommFailure(
                f"injected fault: {self.name} died mid-consultation")
        return fail


def faulty_resolver(space, dead_at_resolve, dead_mid_consult):
    def resolver(name):
        if name in dead_at_resolve:
            raise CommFailure(f"injected fault: {name} refused")
        if name in dead_mid_consult:
            return _DyingClient(name)
        return space.local_resolver(name)
    return resolver


@settings(max_examples=25, deadline=None, derandomize=True)
@given(fault_scenarios())
def test_parallel_matches_sequential_under_faults(scenario):
    databases, coalitions, seed, resolve_dead, consult_dead = scenario
    space = build_scaled_space(databases, coalitions, seed=seed)
    start = space.database_names[0]
    dead_at_resolve = {space.database_names[i] for i in resolve_dead}
    dead_mid_consult = {space.database_names[i] for i in consult_dead}
    topic = next(iter(space.coalition_topics.values()))

    resolver_seq = faulty_resolver(space, dead_at_resolve,
                                   dead_mid_consult)
    resolver_par = faulty_resolver(space, dead_at_resolve,
                                   dead_mid_consult)
    sequential = DiscoveryEngine(resolver_seq)
    parallel = DiscoveryEngine(resolver_par, parallel=True, max_workers=4)
    try:
        kwargs = dict(stop_at_first=False, max_hops=4)
        try:
            seq = sequential.discover(topic, start, **kwargs)
        except CommFailure:
            # Depth-0 (the user's own repository) failed: the parallel
            # engine must agree that this is fatal.
            try:
                parallel.discover(topic, start, **kwargs)
                raise AssertionError("parallel engine swallowed the "
                                     "depth-0 failure")
            except CommFailure:
                return
        par = parallel.discover(topic, start, **kwargs)

        assert [lead.name for lead in seq.leads] == \
            [lead.name for lead in par.leads]
        assert seq.unreachable == par.unreachable
        assert seq.degraded.names() == par.degraded.names()
        assert [e.reason for e in seq.degraded.entries] == \
            [e.reason for e in par.degraded.entries]
        # Every failing database the exploration touched is accounted
        # for, and no healthy sibling was blamed.
        blamed = set(par.degraded.names())
        assert blamed <= (dead_at_resolve | dead_mid_consult)

        # The executor is not wedged: a second discovery on the same
        # engine completes and agrees with a fresh sequential run.
        second_par = parallel.discover(topic, start, **kwargs)
        assert [lead.name for lead in second_par.leads] == \
            [lead.name for lead in seq.leads]
    finally:
        parallel.close()
