"""Replication through the full stack: real ORBs, naming, failover.

These tests exercise what tests/core/test_replication.py stubs out —
replica servants on their own endpoints, the generation-checked proxy
cache, kill/restart through the system facade, and the interaction
with metrics and health state.
"""

import pytest

from repro.core.metacache import MetadataCache
from repro.core.model import SourceDescription
from repro.core.replication import FailoverCoDatabaseClient
from repro.core.system import WebFinditSystem
from repro.errors import CommFailure, WebFinditError
from repro.oodb.database import ObjectDatabase


def build_system(**kwargs):
    system = WebFinditSystem(replication_factor=2, **kwargs)
    for name in ("Alpha", "Beta"):
        database = ObjectDatabase(name=name.lower(), product="ObjectStore")
        system.register_object_source(database, SourceDescription(
            name=name, information_type="cardiology",
            location=f"{name.lower()}.net"))
    system.create_coalition("Cardio", "cardiology")
    system.join("Alpha", "Cardio")
    system.join("Beta", "Cardio")
    return system


class TestReplicatedDeployment:
    def test_replica_bindings_exist(self):
        system = build_system()
        names = system.naming.list_names("webfindit/codb/Alpha")
        assert "webfindit/codb/Alpha/r0" in names
        assert "webfindit/codb/Alpha/r1" in names
        assert "webfindit/codb/Alpha" in names  # base name -> primary

    def test_each_replica_has_its_own_endpoint(self):
        system = build_system()
        facade = system._facade("Alpha")
        endpoints = {runtime.ior.primary.endpoint
                     for runtime in facade.runtimes}
        assert len(endpoints) == 2

    def test_clients_are_failover_clients(self):
        system = build_system()
        client = system.codatabase_client("Alpha")
        assert isinstance(client, FailoverCoDatabaseClient)
        assert client.memberships() == ["Cardio"]

    def test_unreplicated_system_keeps_plain_clients(self):
        system = WebFinditSystem()
        database = ObjectDatabase(name="solo", product="ObjectStore")
        system.register_object_source(database, SourceDescription(
            name="Solo", information_type="x"))
        client = system.codatabase_client("Solo")
        assert not isinstance(client, FailoverCoDatabaseClient)

    def test_kill_requires_a_replicated_source(self):
        system = WebFinditSystem()
        database = ObjectDatabase(name="solo", product="ObjectStore")
        system.register_object_source(database, SourceDescription(
            name="Solo", information_type="x"))
        with pytest.raises(WebFinditError):
            system.kill_replica("Solo", 0)


class TestKillAndFailover:
    def test_killing_the_primary_is_invisible_to_clients(self):
        system = build_system()
        client = system.codatabase_client("Alpha")
        before = client.memberships()
        system.kill_replica("Alpha", 0)
        assert client.memberships() == before
        assert client.failovers == 1

    def test_killing_a_backup_is_invisible_too(self):
        system = build_system()
        client = system.codatabase_client("Alpha")
        system.kill_replica("Alpha", 1)
        assert client.memberships() == ["Cardio"]
        assert client.failovers == 0

    def test_all_replicas_down_raises_comm_failure(self):
        system = build_system()
        client = system.codatabase_client("Alpha")
        system.kill_replica("Alpha", 0)
        system.kill_replica("Alpha", 1)
        with pytest.raises(CommFailure):
            client.memberships()


class TestRestart:
    def test_restart_rebinds_and_serves(self):
        system = build_system()
        system.kill_replica("Alpha", 0)
        system.attach_document("Alpha", "text", "while r0 was down")
        system.restart_replica("Alpha", 0)
        status = system.replica_status("Alpha")
        assert all(r["alive"] and r["lag"] == 0
                   for r in status["replicas"])
        client = system.codatabase_client("Alpha")
        docs = client.documents_of("Alpha")
        assert [d["content"] for d in docs] == ["while r0 was down"]

    def test_stale_ior_regression(self):
        """A client built before a kill+restart holds a proxy to the
        dead endpoint; the generation-checked re-resolve must heal it
        in place, not merely fail over."""
        system = build_system()
        client = system.codatabase_client("Alpha")
        client.memberships()  # proxy to the original r0 now cached
        system.kill_replica("Alpha", 0)
        system.restart_replica("Alpha", 0)
        # r0's binding generation was bumped by the rebind; the stale
        # proxy's first failure triggers re-resolve and retry on r0.
        assert client.memberships() == ["Cardio"]
        assert client.failovers == 0

    def test_restart_closes_the_breaker(self):
        system = build_system()
        client = system.codatabase_client("Alpha")
        system.kill_replica("Alpha", 0)
        system.kill_replica("Alpha", 1)
        for __ in range(4):  # trip both replica breakers
            with pytest.raises(CommFailure):
                client.memberships()
        system.restart_replica("Alpha", 0)
        assert system.replica_status(
            "Alpha")["replicas"][0]["breaker"] == "closed"
        fresh = system.codatabase_client("Alpha")
        assert fresh.memberships() == ["Cardio"]

    def test_restart_invalidates_cached_metadata(self):
        cache = MetadataCache()
        system = build_system(metadata_cache=cache)
        client = system.codatabase_client("Alpha")
        client.memberships()
        assert len(cache) > 0
        system.kill_replica("Alpha", 0)
        system.restart_replica("Alpha", 0)
        assert not any(key[0] == "Alpha" for key in cache._entries)


class TestDurableRestore:
    def test_durable_dir_restores_across_runs(self, tmp_path):
        """Reusing --durable-dir in a new process restores each
        co-database from journal + snapshot and resumes its epochs."""
        system = build_system(durable_dir=str(tmp_path))
        system.attach_document("Alpha", "text", "from run one")
        epoch_before = system.replica_status("Alpha")["epoch"]
        reborn = build_system(durable_dir=str(tmp_path))
        client = reborn.codatabase_client("Alpha")
        assert [d["content"] for d in client.documents_of("Alpha")] \
            == ["from run one"]
        # The redeployment's own writes continue the first run's epoch
        # sequence instead of re-issuing epochs from zero.
        status = reborn.replica_status("Alpha")
        assert status["epoch"] > epoch_before
        assert all(r["lag"] == 0 for r in status["replicas"])


class TestMetricsAndHealth:
    def test_metrics_report_replication(self):
        system = build_system()
        system.kill_replica("Alpha", 1)
        replication = system.metrics()["replication"]
        assert replication["sources"] == 2
        assert replication["replicas"] == 4
        assert replication["alive"] == 3
        assert replication["epochs"]["Alpha"] > 0

    def test_unreplicated_metrics_have_no_replication_section(self):
        system = WebFinditSystem()
        assert system.metrics()["replication"] is None

    def test_health_board_survives_reset_metrics(self):
        """reset_metrics() zeroes counters between bench phases; breaker
        memory is *availability state*, not a counter, and must hold."""
        system = build_system()
        client = system.codatabase_client("Alpha")
        system.kill_replica("Alpha", 0)
        client.memberships()  # records r0's failure
        before = system.resilience.health.snapshot()
        assert before["Alpha/r0"]["failures"] >= 1
        system.reset_metrics()
        after = system.resilience.health.snapshot()
        assert after == before
        assert system.metrics()["giop_messages"] == 0

    def test_replica_status_for_all_sources(self):
        system = build_system()
        status = system.replica_status()
        assert sorted(status) == ["Alpha", "Beta"]
        assert all(len(entry["replicas"]) == 2
                   for entry in status.values())
