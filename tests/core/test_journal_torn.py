"""Crash honesty of the replica journal (docs/quorum.md §journal v2).

The central property: truncate a durable journal at ANY byte offset —
the crash model for a torn append — and reloading recovers exactly the
longest valid record prefix, repairs the file tail, and keeps
accepting appends.  Checked for both the checksummed v2 format and the
legacy JSONL format, via hypothesis over all (entry count, cut offset)
pairs.
"""

import logging
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.journal import (JOURNAL_MAGIC, JournalEntry, ReplicaJournal,
                                encode_record)

MAX_ENTRIES = 6


def entry(epoch, fence=0):
    return JournalEntry(epoch=epoch, operation="attach_document",
                        arguments=(f"s{epoch}", "html", "x" * epoch, ""),
                        fence=fence)


def write_journal(path, fmt, count):
    journal = ReplicaJournal(str(path), fmt=fmt)
    entries = [entry(epoch, fence=1 + epoch // 3)
               for epoch in range(1, count + 1)]
    for item in entries:
        journal.append(item)
    journal.close()
    return entries


def record_boundaries(fmt, entries):
    """Byte offsets at which a whole record ends (prefix lengths)."""
    offsets = [len(JOURNAL_MAGIC) if fmt == "v2" else 0]
    import json
    for item in entries:
        if fmt == "v2":
            offsets.append(offsets[-1] + len(encode_record(item)))
        else:
            line = (json.dumps(item.to_wire()) + "\n").encode("utf-8")
            offsets.append(offsets[-1] + len(line))
    return offsets


@settings(max_examples=120, deadline=None)
@given(fmt=st.sampled_from(["v2", "jsonl"]),
       count=st.integers(min_value=0, max_value=MAX_ENTRIES),
       data=st.data())
def test_truncation_at_any_offset_recovers_longest_valid_prefix(
        tmp_path_factory, fmt, count, data):
    root = tmp_path_factory.mktemp("torn")
    path = root / "journal.wal"
    entries = write_journal(path, fmt, count)
    # With zero appends the lazy handle never created the file at all.
    blob = path.read_bytes() if path.exists() else b""
    cut = data.draw(st.integers(min_value=0, max_value=len(blob)),
                    label="cut")
    path.write_bytes(blob[:cut])

    reloaded = ReplicaJournal(str(path), fmt=fmt)
    recovered = reloaded.entries()

    # Recovered entries are a strict prefix of what was written...
    assert recovered == entries[:len(recovered)]
    boundaries = record_boundaries(fmt, entries)
    # A cut inside the magic header itself leaves zero durable records.
    durable = max((i for i, offset in enumerate(boundaries)
                   if offset <= cut), default=0)
    if fmt == "v2":
        # ...and for v2 EXACTLY the records wholly within the cut.
        assert len(recovered) == durable
    else:
        # JSONL additionally accepts a final record whose JSON survived
        # complete but lost only its trailing newline to the crash.
        assert len(recovered) in (durable, durable + 1)

    # The tail was repaired: appending works and survives a re-read.
    fresh = entry(epoch=97, fence=9)
    reloaded.append(fresh)
    reloaded.close()
    reread = ReplicaJournal(str(path), fmt=fmt)
    assert reread.entries() == recovered + [fresh]
    assert reread.torn_records == 0  # the repair left a clean file


@settings(max_examples=60, deadline=None)
@given(count=st.integers(min_value=1, max_value=MAX_ENTRIES),
       flip=st.data())
def test_v2_checksum_rejects_corrupted_record(tmp_path_factory, count, flip):
    root = tmp_path_factory.mktemp("corrupt")
    path = root / "journal.wal"
    entries = write_journal(path, "v2", count)
    blob = bytearray(path.read_bytes())
    position = flip.draw(st.integers(min_value=len(JOURNAL_MAGIC),
                                     max_value=len(blob) - 1), label="pos")
    blob[position] ^= 0xFF
    path.write_bytes(bytes(blob))

    reloaded = ReplicaJournal(str(path))
    recovered = reloaded.entries()
    assert recovered == entries[:len(recovered)]
    assert len(recovered) < count  # the damaged record never replays
    assert reloaded.torn_records == 1


def test_torn_jsonl_tail_warns_and_counts(tmp_path, caplog):
    path = tmp_path / "journal.jsonl"
    write_journal(path, "jsonl", 3)
    blob = path.read_bytes()
    path.write_bytes(blob[:len(blob) - 4])  # tear the final record
    with caplog.at_level(logging.WARNING, logger="repro.journal"):
        journal = ReplicaJournal(str(path))
    assert journal.torn_records == 1
    assert len(journal) == 2
    assert any("torn record" in record.message for record in caplog.records)


def test_group_commit_batches_fsyncs(tmp_path):
    journal = ReplicaJournal(str(tmp_path / "j.wal"), sync="batch",
                             group_size=3)
    for epoch in range(1, 8):
        journal.append(entry(epoch))
    assert journal.fsyncs == 2  # 7 appends / group of 3
    journal.sync_now()
    assert journal.fsyncs == 3  # the forced barrier drains the tail
    journal.sync_now()
    assert journal.fsyncs == 3  # nothing pending: no extra barrier
    journal.close()


def test_sync_always_fsyncs_every_append(tmp_path):
    journal = ReplicaJournal(str(tmp_path / "j.wal"), sync="always")
    for epoch in range(1, 5):
        journal.append(entry(epoch))
    assert journal.fsyncs == 4
    journal.close()


def test_sync_never_issues_no_barriers(tmp_path):
    journal = ReplicaJournal(str(tmp_path / "j.wal"))
    for epoch in range(1, 5):
        journal.append(entry(epoch))
    assert journal.fsyncs == 0
    journal.close()


def test_discard_rewrites_atomically(tmp_path):
    path = tmp_path / "j.wal"
    journal = ReplicaJournal(str(path))
    for epoch in range(1, 5):
        journal.append(entry(epoch))
    journal.discard(4)
    assert not os.path.exists(str(path) + ".tmp")  # no debris
    reread = ReplicaJournal(str(path))
    assert [item.epoch for item in reread.entries()] == [1, 2, 3]
    assert reread.torn_records == 0  # the rewrite is a complete file


def test_install_snapshot_rewrites_atomically(tmp_path):
    path = tmp_path / "j.wal"
    journal = ReplicaJournal(str(path))
    for epoch in range(1, 6):
        journal.append(entry(epoch))
    journal.install_snapshot({"format": "webfindit-codatabase/1",
                              "epoch": 3})
    assert not os.path.exists(str(path) + ".tmp")
    assert not os.path.exists(journal.snapshot_path + ".tmp")
    reread = ReplicaJournal(str(path))
    assert [item.epoch for item in reread.entries()] == [4, 5]
    assert reread.snapshot["epoch"] == 3
    assert reread.last_epoch == 5


def test_existing_jsonl_file_keeps_its_format(tmp_path):
    path = tmp_path / "journal.jsonl"
    write_journal(path, "jsonl", 2)
    # Reopened with the v2 default, the sniffer must keep appending
    # JSONL — mixing formats in one file would tear every reader.
    journal = ReplicaJournal(str(path))
    assert journal.fmt == "jsonl"
    journal.append(entry(3))
    journal.close()
    blob = path.read_bytes()
    assert not blob.startswith(JOURNAL_MAGIC)
    assert len(ReplicaJournal(str(path)).entries()) == 3


def test_last_fence_reports_journaled_high_water(tmp_path):
    journal = ReplicaJournal(str(tmp_path / "j.wal"))
    assert journal.last_fence == 0
    journal.append(entry(1, fence=2))
    journal.append(entry(2, fence=5))
    journal.close()
    assert ReplicaJournal(str(tmp_path / "j.wal")).last_fence == 5
