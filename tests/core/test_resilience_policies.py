"""Deadlines, retry backoff, circuit breakers, and the policy bundle."""

import pytest

from repro.core.resilience import (CLOSED, HALF_OPEN, OPEN, CircuitBreaker,
                                   Deadline, HealthBoard, ResiliencePolicy,
                                   RetryPolicy, as_deadline, call_policy,
                                   current_policy)
from repro.errors import CircuitOpen, CommFailure, DeadlineExceeded


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestDeadline:
    def test_remaining_counts_down(self):
        clock = FakeClock()
        deadline = Deadline.after(2.0, clock=clock)
        assert deadline.remaining() == pytest.approx(2.0)
        clock.advance(1.5)
        assert deadline.remaining() == pytest.approx(0.5)
        assert not deadline.expired
        clock.advance(1.0)
        assert deadline.expired
        assert deadline.remaining() <= 0.0

    def test_require_raises_when_spent(self):
        clock = FakeClock()
        deadline = Deadline.after(1.0, clock=clock)
        assert deadline.require("step") > 0
        clock.advance(2.0)
        with pytest.raises(DeadlineExceeded, match="step"):
            deadline.require("step")

    def test_as_deadline_normalises(self):
        assert as_deadline(None) is None
        deadline = Deadline.after(1.0)
        assert as_deadline(deadline) is deadline
        assert isinstance(as_deadline(0.5), Deadline)

    def test_call_policy_nesting_inherits(self):
        deadline = Deadline.after(5.0)
        assert current_policy().deadline is None
        with call_policy(deadline=deadline):
            assert current_policy().deadline is deadline
            assert current_policy().idempotent is False
            with call_policy(idempotent=True):
                # The deadline flows through; idempotence is overridden.
                assert current_policy().deadline is deadline
                assert current_policy().idempotent is True
            assert current_policy().idempotent is False
        assert current_policy().deadline is None


class TestRetryPolicy:
    def _policy(self, **kwargs):
        kwargs.setdefault("sleep", lambda _s: None)
        kwargs.setdefault("seed", 7)
        return RetryPolicy(**kwargs)

    def test_retries_idempotent_until_success(self):
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise CommFailure("transient")
            return "ok"

        policy = self._policy(max_attempts=3)
        assert policy.call(flaky, idempotent=True) == "ok"
        assert len(attempts) == 3
        assert policy.retries == 2

    def test_never_retries_non_idempotent(self):
        attempts = []

        def failing():
            attempts.append(1)
            raise CommFailure("boom")

        policy = self._policy()
        with pytest.raises(CommFailure):
            policy.call(failing, idempotent=False)
        assert len(attempts) == 1

    def test_never_retries_deadline_exceeded(self):
        attempts = []

        def timing_out():
            attempts.append(1)
            raise DeadlineExceeded("budget gone")

        policy = self._policy()
        with pytest.raises(DeadlineExceeded):
            policy.call(timing_out, idempotent=True)
        assert len(attempts) == 1

    def test_abandons_retry_when_budget_below_backoff(self):
        clock = FakeClock()
        deadline = Deadline.after(0.01, clock=clock)
        attempts = []

        def failing():
            attempts.append(1)
            raise CommFailure("down")

        policy = self._policy(base_delay=0.05)
        with pytest.raises(CommFailure):
            policy.call(failing, idempotent=True, deadline=deadline)
        assert len(attempts) == 1  # 0.01s budget < 0.05s minimum backoff

    def test_decorrelated_jitter_bounds(self):
        policy = self._policy(base_delay=0.05, max_delay=1.0, multiplier=3.0)
        delay = None
        for __ in range(50):
            previous = delay
            delay = policy.next_delay(previous)
            ceiling = max(0.05, (previous if previous is not None else 0.05)
                          * 3.0)
            assert 0.05 <= delay <= min(1.0, ceiling)

    def test_seeded_jitter_reproducible(self):
        first = [self._policy(seed=3).next_delay() for __ in range(5)]
        second = [self._policy(seed=3).next_delay() for __ in range(5)]
        assert first == second


class TestCircuitBreaker:
    def _breaker(self, clock, **kwargs):
        kwargs.setdefault("failure_threshold", 3)
        kwargs.setdefault("reset_timeout", 5.0)
        return CircuitBreaker(clock=clock, **kwargs)

    def test_trips_after_consecutive_failures(self):
        breaker = self._breaker(FakeClock())
        for __ in range(2):
            breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.trips == 1
        assert not breaker.allow()
        assert breaker.rejections == 1

    def test_success_resets_consecutive_count(self):
        breaker = self._breaker(FakeClock())
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_half_open_probe_closes_on_success(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        for __ in range(3):
            breaker.record_failure()
        clock.advance(5.0)
        assert breaker.state == HALF_OPEN
        assert breaker.allow()        # the single probe slot
        assert not breaker.allow()    # no second concurrent probe
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_half_open_probe_reopens_on_failure(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        for __ in range(3):
            breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.trips == 2


class TestHealthBoard:
    def test_lazy_breakers_and_snapshot(self):
        clock = FakeClock()
        board = HealthBoard(failure_threshold=2, clock=clock)
        assert board.state("RMIT") == CLOSED
        board.record("RMIT", ok=False)
        board.record("RMIT", ok=False)
        assert board.state("RMIT") == OPEN
        assert board.open_endpoints() == ["RMIT"]
        assert not board.allow("RMIT")
        assert board.allow("QUT")
        snapshot = board.snapshot()
        assert snapshot["RMIT"]["state"] == OPEN
        assert snapshot["RMIT"]["failures"] == 2

    def test_forget_drops_health_memory(self):
        board = HealthBoard(failure_threshold=1)
        board.record("gone", ok=False)
        assert board.state("gone") == OPEN
        board.forget("gone")
        assert board.state("gone") == CLOSED
        assert board.allow("gone")


class TestResiliencePolicy:
    def test_guarded_call_trips_then_rejects(self):
        clock = FakeClock()
        policy = ResiliencePolicy(
            retry=RetryPolicy(max_attempts=1, sleep=lambda _s: None),
            health=HealthBoard(failure_threshold=2, clock=clock))

        def dead():
            raise CommFailure("down")

        for __ in range(2):
            with pytest.raises(CommFailure):
                policy.call(dead, key="RMIT", idempotent=True)
        with pytest.raises(CircuitOpen):
            policy.call(dead, key="RMIT", idempotent=True)

    def test_default_deadline_applies(self):
        policy = ResiliencePolicy(default_deadline=4.0)
        deadline = policy.deadline_for(None)
        assert deadline is not None
        assert 0 < deadline.remaining() <= 4.0
        explicit = Deadline.after(1.0)
        assert policy.deadline_for(explicit) is explicit

    def test_call_installs_policy_context(self):
        policy = ResiliencePolicy()
        seen = {}

        def probe():
            seen["deadline"] = current_policy().deadline
            seen["idempotent"] = current_policy().idempotent
            return "ok"

        assert policy.call(probe, idempotent=True, deadline=2.0) == "ok"
        assert seen["idempotent"] is True
        assert seen["deadline"] is not None
