"""Metadata-cache tests: TTL, coherence, and discovery integration.

The cache in front of co-database clients must (a) cut remote metadata
calls on the read-heavy discovery path, (b) surface hit/miss counters
in DiscoveryResult, and (c) be *provably* invalidated by registry
mutations — a stale answer after a join/leave/link change would break
the locality rule the co-databases guarantee.
"""

import pytest

from repro.core.discovery import CoDatabaseClient, DiscoveryEngine
from repro.core.metacache import (CACHEABLE_OPERATIONS,
                                  CachingCoDatabaseClient, MetadataCache,
                                  caching_resolver)
from repro.core.model import SourceDescription
from repro.core.registry import Registry
from repro.core.service_link import EndpointKind, ServiceLink


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def build_world():
    registry = Registry()
    for name, info in [("QUT", "Medical Research"),
                       ("RBH", "Research and Medical"),
                       ("RMIT", "Medical Research"),
                       ("Medibank", "Medical Insurance")]:
        registry.add_source(SourceDescription(name=name,
                                              information_type=info))
    registry.create_coalition("Research", "Medical Research")
    registry.create_coalition("Medical", "Medical")
    registry.create_coalition("Insurance", "Medical Insurance")
    registry.join("QUT", "Research")
    registry.join("RBH", "Research")
    registry.join("RMIT", "Research")
    registry.join("RBH", "Medical")
    registry.join("Medibank", "Insurance")
    registry.add_service_link(ServiceLink(
        EndpointKind.COALITION, "Medical", EndpointKind.COALITION,
        "Insurance", information_type="Medical Insurance"))
    return registry


def engines(registry, cache):
    resolver = caching_resolver(
        lambda name: CoDatabaseClient.for_local(registry.codatabase(name)),
        cache)
    return DiscoveryEngine(resolver)


class TestMetadataCache:
    def test_hit_after_store(self):
        cache = MetadataCache()
        cache.store("QUT", "service_links", (), ["payload"])
        hit, value = cache.lookup("QUT", "service_links", ())
        assert hit and value == ["payload"]
        assert cache.stats()["hits"] == 1

    def test_miss_records_counter(self):
        cache = MetadataCache()
        hit, value = cache.lookup("QUT", "service_links", ())
        assert not hit and value is None
        assert cache.stats()["misses"] == 1

    def test_ttl_expiry(self):
        clock = FakeClock()
        cache = MetadataCache(ttl=10.0, clock=clock)
        cache.store("QUT", "memberships", (), ["Research"])
        clock.advance(9.9)
        assert cache.lookup("QUT", "memberships", ())[0]
        clock.advance(0.2)
        hit, __ = cache.lookup("QUT", "memberships", ())
        assert not hit
        assert cache.stats()["expirations"] == 1

    def test_invalidate_only_affected_database(self):
        cache = MetadataCache()
        cache.store("QUT", "service_links", (), ["a"])
        cache.store("RBH", "service_links", (), ["b"])
        cache.invalidate(["QUT"])
        assert not cache.lookup("QUT", "service_links", ())[0]
        assert cache.lookup("RBH", "service_links", ())[0]
        assert cache.stats()["invalidations"] == 1

    def test_bounded_size_evicts_oldest(self):
        cache = MetadataCache(max_entries=3)
        for index in range(5):
            cache.store(f"db{index}", "memberships", (), [index])
        assert len(cache) == 3
        assert not cache.lookup("db0", "memberships", ())[0]
        assert cache.lookup("db4", "memberships", ())[0]


class TestCachingClient:
    def test_cacheable_reads_skip_remote_call(self):
        registry = build_world()
        cache = MetadataCache()
        client = CachingCoDatabaseClient(
            registry.codatabase("QUT"), "QUT", cache)
        first = client.service_links()
        calls_after_first = client.calls
        second = client.service_links()
        assert [l.label for l in first] == [l.label for l in second]
        # The second read was a hit: no further remote call counted.
        assert client.calls == calls_after_first
        assert client.cache_hits == 1
        assert client.cache_misses >= 1

    def test_uncacheable_reads_always_go_remote(self):
        registry = build_world()
        cache = MetadataCache()
        client = CachingCoDatabaseClient(
            registry.codatabase("QUT"), "QUT", cache)
        assert "describe_instance" not in CACHEABLE_OPERATIONS
        client.describe_instance("QUT")
        calls = client.calls
        client.describe_instance("QUT")
        assert client.calls == calls + 1
        assert client.cache_hits == 0

    def test_distinct_queries_cached_separately(self):
        registry = build_world()
        cache = MetadataCache()
        client = CachingCoDatabaseClient(
            registry.codatabase("QUT"), "QUT", cache)
        research = client.find_coalitions("Medical Research")
        insurance = client.find_coalitions("Medical Insurance")
        # Different args → different cache keys: both calls miss, and the
        # second query's (different) scores are not overwritten by the
        # first's cached value.
        assert client.cache_misses == 2
        assert client.cache_hits == 0
        assert research != insurance
        assert client.find_coalitions("Medical Research") == research
        assert client.cache_hits == 1


class TestDiscoveryIntegration:
    def test_counters_surface_in_discovery_result(self):
        registry = build_world()
        cache = MetadataCache()
        engine = engines(registry, cache)
        cold = engine.discover("Medical Insurance", "QUT")
        warm = engine.discover("Medical Insurance", "QUT")
        assert cold.cache_hits == 0
        assert cold.cache_misses > 0
        assert warm.cache_hits > 0
        # Warm resolution costs strictly fewer remote metadata calls.
        assert warm.metadata_calls < cold.metadata_calls
        assert [l.name for l in warm.leads] == [l.name for l in cold.leads]

    def test_uncached_engine_reports_zero_counters(self):
        registry = build_world()
        engine = engines(registry, None)
        result = engine.discover("Medical Insurance", "QUT")
        assert result.cache_hits == 0
        assert result.cache_misses == 0

    def test_registry_mutation_invalidates_affected_entries(self):
        """A new service link must be visible immediately: the registry
        writes to the audience co-databases and the cache drops exactly
        those entries."""
        registry = build_world()
        cache = MetadataCache(ttl=1e9)  # TTL can never save us here
        registry.add_invalidation_listener(cache.invalidate)
        engine = engines(registry, cache)

        before = engine.discover("state funding records", "QUT",
                                 stop_at_first=False)
        assert not before.resolved  # nothing advertises this topic yet
        warm = engine.discover("state funding records", "QUT",
                               stop_at_first=False)
        assert warm.cache_hits > 0  # the miss path is genuinely cached

        registry.add_source(SourceDescription(
            name="Treasury", information_type="state funding records"))
        registry.create_coalition("Funding", "state funding records")
        registry.join("Treasury", "Funding")
        registry.add_service_link(ServiceLink(
            EndpointKind.COALITION, "Research", EndpointKind.COALITION,
            "Funding", information_type="state funding records"))

        after = engine.discover("state funding records", "QUT",
                                stop_at_first=False)
        assert after.resolved
        assert after.best().name == "Funding"
        assert cache.stats()["invalidations"] > 0

    def test_leave_invalidates_membership_view(self):
        registry = build_world()
        cache = MetadataCache(ttl=1e9)
        registry.add_invalidation_listener(cache.invalidate)
        client = CachingCoDatabaseClient(
            registry.codatabase("QUT"), "QUT", cache)
        assert "RMIT" in [m for m in client.neighbor_databases()]
        client.find_coalitions("Medical Research")  # warm the cache
        registry.leave("RMIT", "Research")
        fresh = client.find_coalitions("Medical Research")
        research = next(m for m in fresh if m["name"] == "Research")
        assert "RMIT" not in research["members"]


class TestSystemWiring:
    def test_system_level_cache_and_invalidation(self):
        """End-to-end over the ORB: a cached system answers repeat
        discoveries from the cache, and a registry mutation through the
        system facade invalidates it."""
        from repro.core.system import WebFinditSystem
        from repro.sql.engine import Database

        cache = MetadataCache()
        system = WebFinditSystem(metadata_cache=cache,
                                 parallel_discovery=True)
        for name, topic in [("alpha", "astronomy"), ("beta", "astronomy"),
                            ("gamma", "geology")]:
            database = Database(name)
            database.execute("CREATE TABLE t (id INT PRIMARY KEY)")
            system.register_relational_source(
                database, SourceDescription(name=name,
                                            information_type=topic))
        system.create_coalition("Stars", "astronomy")
        system.create_coalition("Rocks", "geology")
        system.join("alpha", "Stars")
        system.join("beta", "Stars")
        system.join("gamma", "Rocks")

        processor = system.query_processor()
        cold = processor.discovery.discover("geology", "alpha",
                                            stop_at_first=False)
        warm = processor.discovery.discover("geology", "alpha",
                                            stop_at_first=False)
        assert warm.cache_hits > 0
        assert warm.metadata_calls < cold.metadata_calls
        assert system.metrics()["metadata_cache"]["hits"] > 0

        # A link mutation is visible on the very next resolution.
        system.link("coalition", "Stars", "coalition", "Rocks",
                    information_type="geology")
        after = processor.discovery.discover("geology", "alpha")
        assert after.resolved
        processor.discovery.close()


@pytest.mark.parametrize("operation", sorted(CACHEABLE_OPERATIONS))
def test_every_cacheable_operation_round_trips(operation):
    """Each declared-cacheable operation actually produces a hit on its
    second invocation (guards against signature drift)."""
    registry = build_world()
    cache = MetadataCache()
    client = CachingCoDatabaseClient(
        registry.codatabase("RBH"), "RBH", cache)
    call = {
        "find_coalitions": lambda: client.find_coalitions("Medical"),
        "service_links": client.service_links,
        "memberships": client.memberships,
        "known_coalitions": client.known_coalitions,
    }[operation]
    call()
    call()
    assert client.cache_hits == 1


class TestEpochTaggedEntries:
    """Replication coherence: entries carry the serving replica's epoch
    and die on mismatch (see docs/availability.md)."""

    def test_same_epoch_hits(self):
        cache = MetadataCache()
        cache.store("RBH", "memberships", (), ["Research"], epoch=4)
        hit, value = cache.lookup("RBH", "memberships", (), epoch=4)
        assert hit and value == ["Research"]

    def test_mismatched_epoch_drops_the_entry(self):
        cache = MetadataCache()
        cache.store("RBH", "memberships", (), ["Research"], epoch=4)
        hit, __ = cache.lookup("RBH", "memberships", (), epoch=5)
        assert not hit
        assert cache.stats()["epoch_invalidations"] == 1
        assert len(cache) == 0  # dropped, not just skipped

    def test_unversioned_entries_match_any_epoch(self):
        cache = MetadataCache()
        cache.store("RBH", "memberships", (), ["Research"])
        hit, __ = cache.lookup("RBH", "memberships", (), epoch=7)
        assert hit

    def test_versioned_entries_match_unversioned_lookups(self):
        cache = MetadataCache()
        cache.store("RBH", "memberships", (), ["Research"], epoch=4)
        hit, __ = cache.lookup("RBH", "memberships", ())
        assert hit

    def test_invalidate_source_drops_only_that_owner(self):
        cache = MetadataCache()
        cache.store("RBH", "memberships", (), ["Research"], epoch=4)
        cache.store("QUT", "memberships", (), ["Research"], epoch=2)
        cache.invalidate_source("RBH")
        assert not cache.lookup("RBH", "memberships", (), epoch=4)[0]
        assert cache.lookup("QUT", "memberships", (), epoch=2)[0]
