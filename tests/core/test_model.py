"""Information-type model, topic matching, ontology."""

from repro.core.model import (InformationType, Ontology, SourceDescription,
                              topic_score, topic_words)


class TestTopicWords:
    def test_normalizes_case_and_punctuation(self):
        assert topic_words("Medical-Research, QLD!") == \
            {"medical", "research", "qld"}

    def test_stop_words_removed(self):
        assert topic_words("Research and Medical") == {"research", "medical"}

    def test_empty(self):
        assert topic_words("") == frozenset()
        assert topic_words("and the of") == frozenset()


class TestTopicScore:
    def test_exact_match(self):
        assert topic_score("Medical Research", "Medical Research") == 1.0

    def test_subset_match(self):
        assert topic_score("Medical", "Research and Medical") == 1.0

    def test_partial_match(self):
        assert topic_score("Medical Insurance", "Medical Research") == 0.5

    def test_no_match(self):
        assert topic_score("Superannuation", "Medical Research") == 0.0

    def test_empty_query(self):
        assert topic_score("", "anything") == 0.0

    def test_order_independent(self):
        assert topic_score("research medical", "Medical Research") == 1.0


class TestOntology:
    def test_synonym_expansion(self):
        ontology = Ontology()
        ontology.add_synonyms("medical", ["health", "healthcare"])
        assert "health" in ontology.expand({"medical"})
        assert "medical" in ontology.expand({"healthcare"})

    def test_synonyms_boost_score(self):
        ontology = Ontology()
        ontology.add_synonyms("medical", ["health"])
        assert topic_score("health services", "medical services",
                           ontology) == 1.0
        assert topic_score("health services", "medical services") == 0.5

    def test_proximity_relationships(self):
        ontology = Ontology()
        ontology.relate("Medical", "Medical Insurance")
        assert ontology.are_related("medical", "medical insurance")
        assert ontology.are_related("Medical Insurance", "Medical")
        assert not ontology.are_related("Medical", "Superannuation")
        assert ontology.related("medical") == frozenset({"medical insurance"})


class TestInformationType:
    def test_matching_delegates_to_score(self):
        info = InformationType("Medical Research")
        assert info.matches("research") == 1.0

    def test_structure_carried(self):
        info = InformationType("X", structure=(("title", "string"),))
        assert info.structure[0] == ("title", "string")


class TestSourceDescription:
    def test_wire_roundtrip(self):
        description = SourceDescription(
            name="RBH", information_type="Research and Medical",
            documentation_url="http://rbh", location="dba.icis.qut.edu.au",
            wrapper="WebTassiliOracle",
            interface=["ResearchProjects", "PatientHistory"],
            dbms="Oracle", orb_product="VisiBroker for Java")
        assert SourceDescription.from_wire(description.to_wire()) == \
            description

    def test_render_matches_paper_block(self):
        description = SourceDescription(
            name="Royal Brisbane Hospital",
            information_type="Research and Medical",
            documentation_url="http://www.medicine.uq.edu.au/RBH",
            location="dba.icis.qut.edu.au",
            wrapper="dba.icis.qut.edu.au/WebTassiliOracle",
            interface=["ResearchProjects", "PatientHistory"])
        rendered = description.render()
        assert rendered.splitlines()[0] == \
            "Information Source Royal Brisbane Hospital {"
        assert '    Information Type "Research and Medical"' in rendered
        assert "    Interface ResearchProjects, PatientHistory" in rendered
        assert rendered.endswith("}")
