"""The availability layer: replica sets, journals, crash recovery,
and failover routing (docs/availability.md)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coalition import Coalition
from repro.core.journal import (JournalEntry, ReplicaJournal, apply_entry,
                                encode_operation, replay_entries)
from repro.core.metacache import MetadataCache
from repro.core.model import SourceDescription
from repro.core.replication import (FailoverCoDatabaseClient,
                                    ReplicatedCoDatabase, ReplicaTarget,
                                    replica_binding, replica_key)
from repro.core.resilience import HealthBoard
from repro.core.service_link import EndpointKind, ServiceLink
from repro.core.snapshot import export_codatabase, import_codatabase
from repro.errors import CommFailure, WebFinditError


def description(name="Alpha", info="cardiology"):
    return SourceDescription(name=name, information_type=info,
                             location=f"{name.lower()}.net")


def populated(replicas=2, **kwargs):
    """A replica set with a small but full mutation history."""
    facade = ReplicatedCoDatabase("Alpha", replicas=replicas, **kwargs)
    facade.advertise(description())
    facade.register_coalition(Coalition("Cardio", "cardiology"))
    facade.record_membership("Cardio")
    facade.add_member("Cardio", description("Beta"))
    facade.add_service_link(ServiceLink(
        EndpointKind.COALITION, "Cardio", EndpointKind.DATABASE, "Beta",
        information_type="cardiology"))
    facade.attach_document("Alpha", "text", "about alpha")
    return facade


class TestReplicatedWrites:
    def test_every_live_replica_applies_every_write(self):
        facade = populated(replicas=3)
        for runtime in facade.runtimes:
            codb = runtime.codatabase
            assert codb.memberships == ["Cardio"]
            assert [c.name for c in codb.known_coalitions()] == ["Cardio"]
            assert [d["content"] for d in codb.documents_of("Alpha")] \
                == ["about alpha"]

    def test_replicas_share_the_facade_epoch(self):
        facade = populated(replicas=3)
        assert facade.epoch == 6
        assert [r.epoch for r in facade.runtimes] == [6, 6, 6]

    def test_epoch_bumps_even_on_logical_noops(self):
        facade = ReplicatedCoDatabase("Alpha", replicas=2)
        facade.register_coalition(Coalition("Cardio", "cardiology"))
        facade.record_membership("Cardio")
        facade.record_membership("Cardio")  # no-op, but still a write
        assert facade.epoch == 3
        assert all(r.epoch == 3 for r in facade.runtimes)

    def test_rejected_writes_are_compensated(self):
        """A write the co-database refuses must not poison the journal
        or advance the version — replay would otherwise re-raise it."""
        facade = ReplicatedCoDatabase("Alpha", replicas=2)
        with pytest.raises(WebFinditError):
            facade.record_membership("NoSuchCoalition")
        assert facade.epoch == 0
        assert all(len(r.journal) == 0 for r in facade.runtimes)
        facade.mark_dead(1)
        facade.recover(1)  # replay stays clean

    def test_journal_is_written_before_the_apply(self):
        facade = ReplicatedCoDatabase("Alpha", replicas=1)
        facade.advertise(description())
        [entry] = facade.runtimes[0].journal.entries()
        assert entry.operation == "advertise"
        assert entry.epoch == 1
        assert entry.arguments[0]["name"] == "Alpha"

    def test_reads_delegate_to_first_live_replica(self):
        facade = populated(replicas=2)
        assert facade.memberships == ["Cardio"]
        facade.mark_dead(0)
        assert facade.memberships == ["Cardio"]  # now served by r1

    def test_needs_at_least_one_replica(self):
        with pytest.raises(WebFinditError):
            ReplicatedCoDatabase("Alpha", replicas=0)


class TestCrashRecovery:
    def test_dead_replica_misses_writes(self):
        facade = populated(replicas=2)
        facade.mark_dead(1)
        facade.attach_document("Alpha", "text", "while r1 was down")
        assert facade.runtimes[0].epoch == 7
        assert facade.runtimes[1].epoch == 6  # frozen at the crash

    def test_recover_replays_the_journal(self):
        facade = populated(replicas=2)
        facade.mark_dead(1)
        facade.recover(1)
        runtime = facade.runtimes[1]
        assert runtime.epoch == facade.epoch
        assert runtime.codatabase.memberships == ["Cardio"]
        assert runtime.restarts == 1

    def test_recover_catches_up_by_anti_entropy(self):
        facade = populated(replicas=2)
        facade.mark_dead(1)
        facade.attach_document("Alpha", "text", "missed")
        facade.recover(1)
        codb = facade.runtimes[1].codatabase
        assert codb.epoch == facade.epoch == 7
        assert [d["content"] for d in codb.documents_of("Alpha")] \
            == ["about alpha", "missed"]
        # Anti-entropy installed a snapshot covering the catch-up.
        assert facade.runtimes[1].journal.snapshot is not None

    def test_recover_requires_a_dead_replica(self):
        facade = populated(replicas=2)
        with pytest.raises(WebFinditError):
            facade.recover(0)

    def test_unknown_replica_index(self):
        facade = populated(replicas=2)
        with pytest.raises(WebFinditError):
            facade.mark_dead(5)

    def test_snapshot_cadence_truncates_journals(self):
        facade = populated(replicas=1, snapshot_every=3)
        journal = facade.runtimes[0].journal
        assert journal.snapshot is not None
        assert len(journal) < 6  # older entries subsumed by the snapshot
        facade.mark_dead(0)
        facade.recover(0)
        assert facade.runtimes[0].epoch == facade.epoch

    def test_durable_journal_survives_process_restart(self, tmp_path):
        def factory(owner, index):
            return ReplicaJournal(
                str(tmp_path / owner / f"r{index}" / "journal.jsonl"))

        facade = populated(replicas=1, journal_factory=factory)
        # A "new process": fresh journal object over the same files.
        reloaded = factory("Alpha", 0)
        assert len(reloaded) == 6
        assert reloaded.last_epoch == 6

    def test_durable_journal_is_replayed_on_construction(self, tmp_path):
        """A facade over a reused durable dir must restore the previous
        run's state and resume its epochs — not start fresh at 0 and
        append duplicate epochs onto the old log."""
        def factory(owner, index):
            return ReplicaJournal(
                str(tmp_path / owner / f"r{index}" / "journal.jsonl"))

        populated(replicas=1, journal_factory=factory)
        reborn = ReplicatedCoDatabase("Alpha", replicas=1,
                                      journal_factory=factory)
        assert reborn.epoch == 6
        assert reborn.memberships == ["Cardio"]
        reborn.attach_document("Alpha", "text", "second run")
        journal = reborn.runtimes[0].journal
        assert [e.epoch for e in journal.entries()] == [1, 2, 3, 4, 5, 6, 7]
        reborn.mark_dead(0)
        reborn.recover(0)  # replay over both runs' entries stays clean
        codb = reborn.runtimes[0].codatabase
        assert codb.epoch == 7
        assert [d["content"] for d in codb.documents_of("Alpha")] \
            == ["about alpha", "second run"]

    def test_durable_restore_from_snapshot_plus_tail(self, tmp_path):
        def factory(owner, index):
            return ReplicaJournal(
                str(tmp_path / owner / f"r{index}" / "journal.jsonl"))

        first = populated(replicas=1, journal_factory=factory,
                          snapshot_every=3)
        reborn = ReplicatedCoDatabase("Alpha", replicas=1,
                                      journal_factory=factory)
        assert equivalent_state(reborn.runtimes[0].codatabase) \
            == equivalent_state(first.runtimes[0].codatabase)

    def test_restore_catches_up_fresh_replicas_by_anti_entropy(self,
                                                               tmp_path):
        """Raising the replication factor across runs: the new replica
        has an empty journal and must be seeded from the restored one."""
        def factory(owner, index):
            return ReplicaJournal(
                str(tmp_path / owner / f"r{index}" / "journal.jsonl"))

        populated(replicas=1, journal_factory=factory)
        reborn = ReplicatedCoDatabase("Alpha", replicas=2,
                                      journal_factory=factory)
        assert [r.epoch for r in reborn.runtimes] == [6, 6]
        assert equivalent_state(reborn.runtimes[1].codatabase) \
            == equivalent_state(reborn.runtimes[0].codatabase)

    def test_write_with_no_live_replica_is_refused(self):
        """No live replica means nobody can journal the write: it must
        be refused, not silently dropped with an epoch bump."""
        facade = populated(replicas=2)
        facade.mark_dead(0)
        facade.mark_dead(1)
        with pytest.raises(CommFailure):
            facade.attach_document("Alpha", "text", "lost forever")
        assert facade.epoch == 6  # no epoch consumed by the refusal
        facade.recover(0)
        assert facade.runtimes[0].epoch == facade.epoch == 6

    def test_diverging_sibling_is_quarantined_not_corrupted(self):
        """If a sibling fails after the write committed on the first
        replica, its journal entry is rolled back and the sibling goes
        out of rotation for anti-entropy repair — no journaled-but-
        unapplied entry may survive."""
        facade = populated(replicas=2)
        sibling = facade.runtimes[1]

        def boom(*args, **kwargs):
            raise RuntimeError("simulated journal-apply fault")

        sibling.codatabase.attach_document = boom
        facade.attach_document("Alpha", "text", "late write")
        assert facade.epoch == 7
        assert facade.runtimes[0].epoch == 7
        assert not sibling.alive
        assert sibling.journal.entries_after(6) == []  # rolled back
        del sibling.codatabase.attach_document
        facade.recover(1)
        assert equivalent_state(sibling.codatabase) \
            == equivalent_state(facade.runtimes[0].codatabase)


WRITES = [
    ("advertise", lambda i: (description(),)),
    ("register_coalition", lambda i: (Coalition(f"C{i}", "cardiology"),)),
    ("record_membership", lambda i: (f"C{i}",)),
    ("add_member", lambda i: (f"C{i}", description(f"M{i}"))),
    ("attach_document", lambda i: ("Alpha", "text", f"doc {i}")),
    ("add_service_link", lambda i: (ServiceLink(
        EndpointKind.DATABASE, "Alpha", EndpointKind.DATABASE, f"M{i}",
        information_type="cardiology"),)),
]


def equivalent_state(codatabase):
    """A comparable digest of one co-database's full state."""
    return {
        "epoch": codatabase.epoch,
        "memberships": sorted(codatabase.memberships),
        "coalitions": sorted(c.name for c in codatabase.known_coalitions()),
        "documents": sorted(d["content"]
                            for d in codatabase.documents_of("Alpha")),
        "links": sorted(str(link) for link in codatabase.service_links()),
    }


class TestCrashRecoveryProperty:
    @settings(max_examples=40, deadline=None)
    @given(script=st.lists(st.integers(min_value=0,
                                       max_value=len(WRITES) - 1),
                           min_size=1, max_size=20),
           kill_after=st.integers(min_value=0, max_value=20),
           snapshot_every=st.one_of(st.none(),
                                    st.integers(min_value=1, max_value=5)))
    def test_killed_replica_recovers_to_peer_state(self, script, kill_after,
                                                   snapshot_every):
        """Kill r1 after K writes, keep writing, restart: r1 must equal
        the never-killed r0 exactly (state and epoch)."""
        kill_after = min(kill_after, len(script))
        facade = ReplicatedCoDatabase("Alpha", replicas=2,
                                      snapshot_every=snapshot_every)
        accepted = 0
        for step, choice in enumerate(script):
            if step == kill_after:
                facade.mark_dead(1)
            operation, make_args = WRITES[choice]
            try:
                getattr(facade, operation)(*make_args(step))
                accepted += 1
            except WebFinditError:
                pass  # invalid write, compensated — no epoch consumed
        if kill_after >= len(script):
            facade.mark_dead(1)
        facade.recover(1)
        survivor, recovered = facade.runtimes
        assert equivalent_state(recovered.codatabase) \
            == equivalent_state(survivor.codatabase)
        assert recovered.epoch == facade.epoch == accepted


class TestJournalReplay:
    def test_replay_skips_already_applied_epochs(self):
        facade = populated(replicas=1)
        codatabase = facade.runtimes[0].codatabase
        entries = facade.runtimes[0].journal.entries()
        assert replay_entries(codatabase, entries) == 0  # all applied

    def test_apply_entry_rejects_unknown_operations(self):
        facade = populated(replicas=1)
        bogus = JournalEntry(epoch=99, operation="drop_everything",
                             arguments=())
        with pytest.raises(WebFinditError):
            apply_entry(facade.runtimes[0].codatabase, bogus)

    def test_encode_operation_wires_model_objects(self):
        encoded = encode_operation(
            "add_member", ("Cardio", description("Beta")))
        assert encoded[0] == "Cardio"
        assert encoded[1]["name"] == "Beta"

    def test_entries_after_filters_by_epoch(self):
        facade = populated(replicas=1)
        journal = facade.runtimes[0].journal
        assert [e.epoch for e in journal.entries_after(4)] == [5, 6]


class TestCodatabaseSnapshot:
    def test_round_trip_preserves_documents_and_epoch(self):
        facade = populated(replicas=1)
        original = facade.runtimes[0].codatabase
        restored = import_codatabase(export_codatabase(original))
        assert equivalent_state(restored) == equivalent_state(original)
        assert restored.epoch == original.epoch == 6

    def test_rejects_foreign_formats(self):
        with pytest.raises(WebFinditError):
            import_codatabase({"format": "something-else/9"})


class _Endpoint:
    """A scriptable replica endpoint for routing tests."""

    def __init__(self, name, epoch=1):
        self.name = name
        self.alive = True
        self.epoch = epoch
        self.invocations = []
        self.generation = 1
        #: Fail only the "epoch" probe (transient fault scripting).
        self.fail_epoch_probe = False

    def invoke(self, operation, *args):
        self.invocations.append(operation)
        if not self.alive:
            raise CommFailure(f"{self.name} is down")
        if operation == "epoch":
            if self.fail_epoch_probe:
                raise CommFailure(f"{self.name} dropped the epoch probe")
            return self.epoch
        if operation == "memberships":
            return ["Cardio"]
        if operation == "documents_of":
            return []
        return f"{self.name}:{operation}"

    def target(self, source="Alpha", index=0):
        return ReplicaTarget(
            key=replica_key(source, index),
            binding=replica_binding(source, index),
            proxy=lambda: self,
            refresh=lambda: (self, False))


class TestFailoverClient:
    def test_prefers_the_primary(self):
        r0, r1 = _Endpoint("r0"), _Endpoint("r1")
        client = FailoverCoDatabaseClient(
            "Alpha", [r0.target(index=0), r1.target("Alpha", 1)],
            health=HealthBoard())
        assert client.memberships() == ["Cardio"]
        assert r1.invocations == []

    def test_fails_over_when_the_primary_dies(self):
        r0, r1 = _Endpoint("r0"), _Endpoint("r1")
        health = HealthBoard()
        client = FailoverCoDatabaseClient(
            "Alpha", [r0.target(index=0), r1.target("Alpha", 1)],
            health=health)
        r0.alive = False
        assert client.memberships() == ["Cardio"]
        assert client.failovers == 1
        # The failure was charged to r0's breaker, not the source's.
        assert health.snapshot()[replica_key("Alpha", 0)]["failures"] == 1

    def test_sticks_to_the_failover_target(self):
        r0, r1 = _Endpoint("r0"), _Endpoint("r1")
        client = FailoverCoDatabaseClient(
            "Alpha", [r0.target(index=0), r1.target("Alpha", 1)],
            health=HealthBoard())
        r0.alive = False
        client.memberships()
        r0.invocations.clear()
        client.memberships()
        assert r0.invocations == []  # r1 is now the serving replica

    def test_raises_only_when_every_replica_fails(self):
        r0, r1 = _Endpoint("r0"), _Endpoint("r1")
        client = FailoverCoDatabaseClient(
            "Alpha", [r0.target(index=0), r1.target("Alpha", 1)],
            health=HealthBoard())
        r0.alive = r1.alive = False
        with pytest.raises(CommFailure):
            client.memberships()

    def test_open_breakers_are_skipped_without_a_call(self):
        r0, r1 = _Endpoint("r0"), _Endpoint("r1")
        health = HealthBoard(failure_threshold=1, reset_timeout=3600.0)
        client = FailoverCoDatabaseClient(
            "Alpha", [r0.target(index=0), r1.target("Alpha", 1)],
            health=health)
        r0.alive = False
        client.memberships()  # trips r0's breaker
        r0.invocations.clear()
        client._serving_index = 0  # force routing from the top again
        client.memberships()
        assert r0.invocations == []  # skipped: circuit open

    def test_stale_ior_retry_uses_the_refreshed_proxy(self):
        dead, fresh = _Endpoint("old"), _Endpoint("new")
        dead.alive = False
        target = ReplicaTarget(
            key=replica_key("Alpha", 0),
            binding=replica_binding("Alpha", 0),
            proxy=lambda: dead,
            refresh=lambda: (fresh, True))  # generation changed
        client = FailoverCoDatabaseClient("Alpha", [target],
                                          health=HealthBoard())
        assert client.memberships() == ["Cardio"]
        assert client.failovers == 0  # healed in place, no sibling used


class TestFailoverCacheCoherence:
    def test_cache_entries_are_epoch_tagged(self):
        r0, r1 = _Endpoint("r0", epoch=5), _Endpoint("r1", epoch=5)
        cache = MetadataCache()
        client = FailoverCoDatabaseClient(
            "Alpha", [r0.target(index=0), r1.target("Alpha", 1)],
            health=HealthBoard(), cache=cache)
        client.memberships()
        assert client.memberships() == ["Cardio"]
        assert client.cache_hits == 1

    def test_failover_to_lagging_replica_invalidates_the_source(self):
        r0, r1 = _Endpoint("r0", epoch=5), _Endpoint("r1", epoch=3)
        cache = MetadataCache()
        client = FailoverCoDatabaseClient(
            "Alpha", [r0.target(index=0), r1.target("Alpha", 1)],
            health=HealthBoard(), cache=cache)
        client.memberships()  # cached under r0's epoch 5
        r0.alive = False
        # A cacheable read would still be served from the cache (the
        # TTL-bounded staleness rule); an uncacheable one must route —
        # and notice the primary is gone.
        client.documents_of("Alpha")
        assert client.failovers == 1
        assert cache.stats()["invalidations"] > 0  # epoch 5 != 3
        # Reads now come from r1 and re-cache under its epoch.
        r1.invocations.clear()
        client.memberships()
        client.memberships()
        assert r1.invocations.count("memberships") == 1

    def test_failed_epoch_probe_bypasses_the_cache(self):
        """When the epoch probe fails transiently, the read must not be
        stored unversioned — such an entry would match any epoch and
        survive the failover invalidation."""
        r0 = _Endpoint("r0", epoch=5)
        r0.fail_epoch_probe = True
        cache = MetadataCache()
        client = FailoverCoDatabaseClient(
            "Alpha", [r0.target(index=0)], health=HealthBoard(),
            cache=cache)
        assert client.memberships() == ["Cardio"]
        assert len(cache) == 0  # bypassed, not stored unversioned
        # Probe heals: reads are cached again, epoch-tagged.
        r0.fail_epoch_probe = False
        client.memberships()
        client.memberships()
        assert client.cache_hits == 1
        assert all(epoch is not None
                   for __, __, epoch in cache._entries.values())

    def test_replica_set_status_reports_lag_and_breakers(self):
        facade = populated(replicas=2)
        facade.mark_dead(1)
        facade.attach_document("Alpha", "text", "more")
        health = HealthBoard()
        health.record(replica_key("Alpha", 1), ok=False)
        status = facade.status(health=health)
        r0, r1 = status["replicas"]
        assert (r0["lag"], r1["lag"]) == (0, 1)
        assert not r1["alive"]
        assert r1["breaker"] == "closed"
