"""Property-based tests: discovery invariants over random topologies."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.discovery import CoDatabaseClient, DiscoveryEngine
from repro.core.model import SourceDescription
from repro.core.registry import Registry
from repro.core.service_link import EndpointKind, ServiceLink

TOPICS = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta"]


@st.composite
def topologies(draw):
    """Random federations: N sources in K coalitions plus a random
    coalition-link mesh (ring guaranteed, so everything is reachable)."""
    coalition_count = draw(st.integers(min_value=1, max_value=5))
    sources_per = draw(st.lists(st.integers(min_value=1, max_value=4),
                                min_size=coalition_count,
                                max_size=coalition_count))
    extra_links = draw(st.lists(
        st.tuples(st.integers(0, coalition_count - 1),
                  st.integers(0, coalition_count - 1)),
        max_size=4))
    return coalition_count, sources_per, extra_links


def build(coalition_count, sources_per, extra_links):
    return populate(Registry(), coalition_count, sources_per, extra_links)


def populate(registry, coalition_count, sources_per, extra_links):
    """Apply one drawn topology to any registry-like target (a singleton
    ``Registry`` or a ``ShardedRegistryClient``) in identical order."""
    names = []
    for index in range(coalition_count):
        topic = TOPICS[index % len(TOPICS)]
        name = f"C{index} {topic}"
        registry.create_coalition(name, topic)
        names.append(name)
    databases = []
    for coalition_index, count in enumerate(sources_per):
        for j in range(count):
            db_name = f"db{coalition_index}_{j}"
            registry.add_source(SourceDescription(
                name=db_name,
                information_type=TOPICS[coalition_index % len(TOPICS)]))
            registry.join(db_name, names[coalition_index])
            databases.append(db_name)
    edges = {(i, (i + 1) % coalition_count)
             for i in range(coalition_count) if coalition_count > 1}
    edges.update((a, b) for a, b in extra_links if a != b)
    for a, b in edges:
        try:
            registry.add_service_link(ServiceLink(
                EndpointKind.COALITION, names[a],
                EndpointKind.COALITION, names[b],
                information_type=TOPICS[b % len(TOPICS)]))
        except Exception:
            pass
    return registry, names, databases


def engine_for(registry):
    return DiscoveryEngine(
        lambda name: CoDatabaseClient.for_local(registry.codatabase(name)))


@given(topologies())
@settings(max_examples=40, deadline=None)
def test_local_topic_resolves_at_depth_zero(topology):
    """A topic hosted by the start database's own coalition always
    resolves locally with one co-database contact."""
    registry, names, databases = build(*topology)
    engine = engine_for(registry)
    start = databases[0]
    own_topic = registry.source(start).information_type
    result = engine.discover(own_topic, start)
    assert result.resolved
    assert result.max_depth_reached == 0
    assert result.codatabases_contacted == 1


@given(topologies())
@settings(max_examples=40, deadline=None)
def test_contacts_bounded_by_population(topology):
    registry, names, databases = build(*topology)
    engine = engine_for(registry)
    for topic in {registry.coalition(name).information_type
                  for name in names}:
        result = engine.discover(topic, databases[-1], max_hops=10)
        assert result.codatabases_contacted <= len(databases)


@given(topologies())
@settings(max_examples=30, deadline=None)
def test_discovery_is_deterministic(topology):
    registry, names, databases = build(*topology)
    engine = engine_for(registry)
    topic = registry.coalition(names[-1]).information_type
    first = engine.discover(topic, databases[0], max_hops=10)
    second = engine.discover(topic, databases[0], max_hops=10)
    assert [(l.name, l.score, l.via) for l in first.leads] == \
        [(l.name, l.score, l.via) for l in second.leads]
    assert first.codatabases_contacted == second.codatabases_contacted


@given(topologies())
@settings(max_examples=30, deadline=None)
def test_unknown_topic_never_resolves(topology):
    registry, names, databases = build(*topology)
    engine = engine_for(registry)
    result = engine.discover("nonexistent subject matter",
                             databases[0], max_hops=10)
    assert not result.resolved
    assert result.leads == []


def lead_fingerprint(result):
    return [(lead.name, lead.score, lead.via, lead.through_link,
             lead.contact, lead.members) for lead in result.leads]


@given(topologies(), st.booleans())
@settings(max_examples=40, deadline=None)
def test_parallel_equals_sequential(topology, stop_at_first):
    """The parallel fan-out engine is an optimisation, not a different
    algorithm: leads, contact counts, call counts, traces, and
    unreachable lists are identical to the sequential engine's."""
    registry, names, databases = build(*topology)
    sequential = engine_for(registry)
    parallel = DiscoveryEngine(
        lambda name: CoDatabaseClient.for_local(registry.codatabase(name)),
        parallel=True, max_workers=4)
    try:
        topics = {registry.coalition(name).information_type
                  for name in names} | {"nonexistent subject matter"}
        for topic in sorted(topics):
            for start in (databases[0], databases[-1]):
                first = sequential.discover(topic, start, max_hops=10,
                                            stop_at_first=stop_at_first)
                second = parallel.discover(topic, start, max_hops=10,
                                           stop_at_first=stop_at_first)
                assert lead_fingerprint(first) == lead_fingerprint(second)
                assert first.codatabases_contacted == \
                    second.codatabases_contacted
                assert first.metadata_calls == second.metadata_calls
                assert first.max_depth_reached == second.max_depth_reached
                assert first.trace == second.trace
                assert first.unreachable == second.unreachable
    finally:
        parallel.close()


@given(topologies())
@settings(max_examples=20, deadline=None)
def test_parallel_equals_sequential_with_failures(topology):
    """Unreachable co-databases are skipped identically in both modes
    (same unreachable list, same surviving leads)."""
    from repro.errors import CommFailure

    registry, names, databases = build(*topology)
    start = databases[0]
    # Kill every other database except the start (which must answer).
    dead = {name for index, name in enumerate(databases)
            if index % 2 == 1 and name != start}

    def resolver(name):
        if name in dead:
            raise CommFailure(f"connection refused: {name}")
        return CoDatabaseClient.for_local(registry.codatabase(name))

    sequential = DiscoveryEngine(resolver)
    parallel = DiscoveryEngine(resolver, parallel=True, max_workers=4)
    try:
        topic = registry.coalition(names[-1]).information_type
        first = sequential.discover(topic, start, max_hops=10)
        second = parallel.discover(topic, start, max_hops=10)
        assert lead_fingerprint(first) == lead_fingerprint(second)
        assert first.unreachable == second.unreachable
        assert first.codatabases_contacted == second.codatabases_contacted
        assert first.metadata_calls == second.metadata_calls
        assert first.trace == second.trace
        assert set(first.unreachable) <= dead
    finally:
        parallel.close()


@pytest.mark.parametrize("stripes", [1, 2, 4],
                         ids=["stripes1", "stripes2", "stripes4"])
@given(topologies())
@settings(max_examples=4, deadline=None)
def test_parallel_equals_sequential_over_pipelined_tcp(stripes, topology):
    """The deterministic-merge invariant survives the pipelined TCP
    transport: with co-databases behind one real IIOP endpoint and the
    parallel fan-out sharing `stripes` pipelined connections, leads,
    counts, traces, and unreachable lists still match the sequential
    engine exactly."""
    from repro.core.codatabase import CODATABASE_INTERFACE, CoDatabaseServant
    from repro.orb import ORBIX, TcpTransport, create_orb

    registry, names, databases = build(*topology)
    transport = TcpTransport(pipelined=True, stripes=stripes)
    orb = create_orb(ORBIX, transport, host="127.0.0.1", port=0)
    try:
        iors = {
            name: orb.activate(
                CoDatabaseServant(registry.codatabase(name)),
                CODATABASE_INTERFACE, object_name=f"codb-{name}")
            for name in databases
        }

        def resolver(name):
            return CoDatabaseClient.for_proxy(
                orb.proxy(iors[name], CODATABASE_INTERFACE), name)

        sequential = DiscoveryEngine(resolver)
        parallel = DiscoveryEngine(resolver, parallel=True, max_workers=4)
        try:
            topic = registry.coalition(names[-1]).information_type
            for start in (databases[0], databases[-1]):
                first = sequential.discover(topic, start, max_hops=10)
                second = parallel.discover(topic, start, max_hops=10)
                assert lead_fingerprint(first) == lead_fingerprint(second)
                assert first.codatabases_contacted == \
                    second.codatabases_contacted
                assert first.metadata_calls == second.metadata_calls
                assert first.trace == second.trace
                assert first.unreachable == second.unreachable
        finally:
            parallel.close()
    finally:
        transport.close()


@given(topologies())
@settings(max_examples=30, deadline=None)
def test_leads_sorted_and_deduplicated(topology):
    registry, names, databases = build(*topology)
    engine = engine_for(registry)
    topic = registry.coalition(names[0]).information_type
    result = engine.discover(topic, databases[-1], max_hops=10,
                             stop_at_first=False)
    scores = [lead.score for lead in result.leads]
    assert scores == sorted(scores, reverse=True)
    coalition_leads = [lead.name for lead in result.leads
                       if lead.through_link is None]
    assert len(coalition_leads) == len(set(coalition_leads))


# ---------------------------------------------------------------------------
# Cross-shard equivalence: discovery over a sharded registry is
# byte-identical to discovery over a singleton — every field of the
# DiscoveryResult, including the degraded report.
# ---------------------------------------------------------------------------


def result_bytes(result):
    """The full DiscoveryResult as one comparable structure — every
    field, recursively, including the degraded report."""
    import dataclasses
    return dataclasses.asdict(result)


@given(topologies(), st.integers(min_value=2, max_value=5), st.booleans())
@settings(max_examples=25, deadline=None)
def test_sharded_discovery_equals_singleton(topology, shard_count,
                                            parallel_mode):
    """Sharding the registry is invisible to discovery: for any random
    topology, any shard count, sequential or parallel fan-out, the
    DiscoveryResult is byte-identical to the singleton deployment's."""
    from repro.core.sharding import ShardedRegistryClient

    singleton, names, databases = build(*topology)
    sharded = ShardedRegistryClient.local(shard_count, vnodes=8)
    populate(sharded, *topology)

    def sharded_engine():
        return DiscoveryEngine(
            lambda name: CoDatabaseClient.for_local(
                sharded.codatabase(name)),
            parallel=parallel_mode, max_workers=4)

    reference = engine_for(singleton)
    engine = sharded_engine()
    try:
        topics = {singleton.coalition(name).information_type
                  for name in names} | {"nonexistent subject matter"}
        for topic in sorted(topics):
            for start in (databases[0], databases[-1]):
                expected = reference.discover(topic, start, max_hops=10)
                actual = engine.discover(topic, start, max_hops=10)
                assert result_bytes(actual) == result_bytes(expected)
    finally:
        engine.close()


@given(topologies(), st.integers(min_value=2, max_value=4))
@settings(max_examples=15, deadline=None)
def test_sharded_discovery_equals_singleton_with_failures(topology,
                                                          shard_count):
    """The equivalence holds through partial failure: with the same
    co-databases dead in both deployments, unreachable lists, degraded
    reports, and surviving leads match byte for byte."""
    from repro.core.sharding import ShardedRegistryClient
    from repro.errors import CommFailure

    singleton, names, databases = build(*topology)
    sharded = ShardedRegistryClient.local(shard_count, vnodes=8)
    populate(sharded, *topology)
    start = databases[0]
    dead = {name for index, name in enumerate(databases)
            if index % 2 == 1 and name != start}

    def resolver_over(registry_like):
        def resolver(name):
            if name in dead:
                raise CommFailure(f"connection refused: {name}")
            return CoDatabaseClient.for_local(
                registry_like.codatabase(name))
        return resolver

    reference = DiscoveryEngine(resolver_over(singleton))
    engine = DiscoveryEngine(resolver_over(sharded))
    topic = singleton.coalition(names[-1]).information_type
    expected = reference.discover(topic, start, max_hops=10)
    actual = engine.discover(topic, start, max_hops=10)
    assert result_bytes(actual) == result_bytes(expected)
    assert actual.unreachable == expected.unreachable
    assert set(actual.unreachable) <= dead
