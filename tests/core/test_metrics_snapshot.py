"""Tear-checks: metrics snapshots stay coherent under writer storms.

``TransportMetrics`` and ``MetadataCache`` serve many threads at once;
both promise that one ``snapshot()``/``stats()`` call observes a single
consistent state, never a mix of before/after a concurrent update.
These tests hammer each with 8 writer threads while a reader asserts
cross-counter invariants that only hold for untorn reads — e.g. with
every ``record()`` carrying a fixed request size, ``bytes_sent`` must
equal ``messages_sent * size`` in *every* snapshot, and the
``per_endpoint`` histogram must sum to ``messages_sent`` exactly.

``system.metrics()`` is covered too: it must read ONE transport
snapshot rather than the live fields one by one.
"""

import threading

from repro.core.metacache import MetadataCache
from repro.core.model import SourceDescription
from repro.core.system import WebFinditSystem
from repro.oodb.database import ObjectDatabase
from repro.orb.transport import TransportMetrics

WRITERS = 8
ROUNDS = 400
REQUEST_SIZE = 100
REPLY_SIZE = 40


def run_writers(target, count=WRITERS):
    stop = threading.Event()
    errors = []

    def loop(index):
        try:
            while not stop.is_set():
                target(index)
        except Exception as exc:  # noqa: BLE001 — reported below
            errors.append(exc)
    threads = [threading.Thread(target=loop, args=(index,))
               for index in range(count)]
    for thread in threads:
        thread.start()
    return stop, threads, errors


def test_transport_snapshot_never_tears():
    metrics = TransportMetrics()

    def write(index):
        metrics.record(("host", 9000 + index), REQUEST_SIZE, REPLY_SIZE)
        metrics.record_connection(reused=index % 2 == 0)
        metrics.record_shed("deadline" if index % 2 else "queue")

    stop, threads, errors = run_writers(write)
    try:
        for __ in range(ROUNDS):
            snap = metrics.snapshot()
            # Every record() moves these three together, under one
            # lock: any snapshot where they disagree is a torn read.
            assert snap["bytes_sent"] == \
                snap["messages_sent"] * REQUEST_SIZE
            assert snap["bytes_received"] == \
                snap["messages_sent"] * REPLY_SIZE
            assert sum(snap["per_endpoint"].values()) == \
                snap["messages_sent"]
    finally:
        stop.set()
        for thread in threads:
            thread.join()
    assert not errors
    # Quiescent totals line up too (no lost increments).
    final = metrics.snapshot()
    assert final["messages_sent"] > 0
    assert sum(final["per_endpoint"].values()) == final["messages_sent"]
    assert set(final["per_endpoint"]) == \
        {f"host:{9000 + index}" for index in range(WRITERS)}


def test_transport_snapshot_is_monotonic():
    metrics = TransportMetrics()

    def write(index):
        metrics.record(("host", 7000), REQUEST_SIZE, REPLY_SIZE)

    stop, threads, errors = run_writers(write)
    try:
        previous = 0
        for __ in range(ROUNDS):
            snap = metrics.snapshot()
            assert snap["messages_sent"] >= previous
            previous = snap["messages_sent"]
    finally:
        stop.set()
        for thread in threads:
            thread.join()
    assert not errors


def test_metadata_cache_stats_never_tear():
    cache = MetadataCache(ttl=60.0, max_entries=64)

    def write(index):
        database = f"db{index}"
        cache.store(database, "memberships", (), ["Cardio"], epoch=1)
        cache.lookup(database, "memberships", ())          # hit
        cache.lookup(database, "memberships", (), epoch=2)  # epoch drop
        cache.lookup(f"absent{index}", "memberships", ())  # plain miss
        cache.invalidate(database)

    stop, threads, errors = run_writers(write)
    try:
        previous_lookups = 0
        for __ in range(ROUNDS):
            stats = cache.stats()
            # Each lookup increments exactly one of hit/miss, and the
            # expiration / epoch-drop counters only ever move together
            # with a miss — both relations break on a torn read.
            lookups = stats["hits"] + stats["misses"]
            assert stats["misses"] >= \
                stats["expirations"] + stats["epoch_invalidations"]
            assert lookups >= previous_lookups
            assert stats["entries"] <= 64
            assert all(value >= 0 for value in stats.values())
            previous_lookups = lookups
    finally:
        stop.set()
        for thread in threads:
            thread.join()
    assert not errors
    assert cache.stats()["hits"] > 0
    assert cache.stats()["epoch_invalidations"] > 0


def test_system_metrics_reads_one_transport_snapshot():
    """``system.metrics()`` must take a single atomic transport
    snapshot: while worker threads drive real GIOP traffic, the
    per-endpoint histogram it reports always sums to exactly the
    message total it reports."""
    system = WebFinditSystem(shards=2)
    for name in ("Alpha", "Beta", "Gamma"):
        database = ObjectDatabase(name=name.lower(), product="ObjectStore")
        system.register_object_source(database, SourceDescription(
            name=name, information_type="cardiology",
            location=f"{name.lower()}.net"))
    system.create_coalition("Cardio", "cardiology")
    system.join("Alpha", "Cardio")

    def write(index):
        source = ("Alpha", "Beta", "Gamma")[index % 3]
        system.codatabase_client(source).memberships()

    stop, threads, errors = run_writers(write)
    try:
        for __ in range(80):
            metrics = system.metrics()
            assert sum(metrics["giop_per_endpoint"].values()) == \
                metrics["giop_messages"]
    finally:
        stop.set()
        for thread in threads:
            thread.join()
    assert not errors
    final = system.metrics()
    assert final["giop_messages"] > 0
    assert sum(final["giop_per_endpoint"].values()) == \
        final["giop_messages"]
