"""Retry budgets: jitter bounds (property-based) and the token-bucket
cap under concurrent callers."""

import threading

import pytest

from repro.deadline import RetryBudget, current_policy
from repro.core.resilience import RetryPolicy
from repro.errors import CommFailure

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402


class TestNextDelayProperties:
    @given(base=st.floats(min_value=0.001, max_value=1.0),
           max_delay=st.floats(min_value=0.001, max_value=10.0),
           multiplier=st.floats(min_value=1.0, max_value=10.0),
           seed=st.integers(min_value=0, max_value=2**32 - 1),
           draws=st.integers(min_value=1, max_value=20))
    @settings(max_examples=60, deadline=None)
    def test_delay_always_within_bounds(self, base, max_delay, multiplier,
                                        seed, draws):
        policy = RetryPolicy(base_delay=base, max_delay=max_delay,
                             multiplier=multiplier, seed=seed)
        previous = None
        for __ in range(draws):
            delay = policy.next_delay(previous)
            assert delay <= max_delay
            assert delay >= min(base, max_delay)
            previous = delay

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_same_seed_same_jitter_sequence(self, seed):
        first = RetryPolicy(seed=seed)
        second = RetryPolicy(seed=seed)
        previous_a = previous_b = None
        for __ in range(5):
            previous_a = first.next_delay(previous_a)
            previous_b = second.next_delay(previous_b)
            assert previous_a == previous_b


class TestRetryBudgetAccounting:
    def test_bucket_starts_full_and_caps_at_burst(self):
        budget = RetryBudget(ratio=0.5, burst=3.0)
        assert budget.tokens("a") == 3.0
        for __ in range(20):
            budget.note_attempt("a")
        assert budget.tokens("a") == 3.0  # deposits cap at burst

    def test_keys_are_independent_buckets(self):
        budget = RetryBudget(ratio=0.0, burst=1.0)
        assert budget.try_acquire("a")
        assert not budget.try_acquire("a")
        assert budget.try_acquire("b")  # a's exhaustion never touches b

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryBudget(ratio=-0.1)
        with pytest.raises(ValueError):
            RetryBudget(burst=0.5)

    @given(ratio=st.floats(min_value=0.0, max_value=0.5),
           burst=st.floats(min_value=1.0, max_value=8.0),
           attempts=st.integers(min_value=1, max_value=200))
    @settings(max_examples=60, deadline=None)
    def test_grants_never_exceed_ratio_plus_burst(self, ratio, burst,
                                                  attempts):
        budget = RetryBudget(ratio=ratio, burst=burst)
        granted = 0
        for __ in range(attempts):
            budget.note_attempt("endpoint")
            if budget.try_acquire("endpoint"):
                granted += 1
        # The invariant the bucket exists for: long-run retry volume is
        # a bounded fraction of offered load, plus the initial burst.
        assert granted <= ratio * attempts + burst

    def test_concurrent_callers_respect_the_cap(self):
        budget = RetryBudget(ratio=0.1, burst=5.0)
        workers, per_worker = 8, 100
        granted = [0] * workers
        barrier = threading.Barrier(workers)

        def caller(slot):
            barrier.wait()
            for __ in range(per_worker):
                budget.note_attempt("shared")
                if budget.try_acquire("shared"):
                    granted[slot] += 1

        threads = [threading.Thread(target=caller, args=(slot,))
                   for slot in range(workers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        attempts = workers * per_worker
        assert budget.snapshot()["attempts"] == attempts
        assert sum(granted) <= 0.1 * attempts + 5.0
        assert sum(granted) == budget.snapshot()["granted"]


class TestRetryPolicyBudgetIntegration:
    def _flaky(self, failures):
        state = {"calls": 0}

        def fn():
            state["calls"] += 1
            if state["calls"] <= failures:
                raise CommFailure("flap")
            return "ok"

        return fn, state

    def test_budget_allows_retry_then_denies_when_spent(self):
        budget = RetryBudget(ratio=0.0, burst=1.0)  # exactly one retry ever
        policy = RetryPolicy(max_attempts=3, sleep=lambda __: None,
                             budget=budget)
        fn, state = self._flaky(failures=1)
        assert policy.call(fn, idempotent=True, key="site") == "ok"
        assert state["calls"] == 2

        fn, state = self._flaky(failures=1)
        with pytest.raises(CommFailure):
            policy.call(fn, idempotent=True, key="site")
        assert state["calls"] == 1  # denied before the second attempt
        assert policy.budget_denials == 1

    def test_budget_refills_from_first_attempts(self):
        budget = RetryBudget(ratio=0.5, burst=1.0)
        policy = RetryPolicy(max_attempts=2, sleep=lambda __: None,
                             budget=budget)
        fn, __ = self._flaky(failures=1)
        assert policy.call(fn, idempotent=True, key="site") == "ok"
        assert not budget.try_acquire("site")  # spent
        for __unused in range(2):  # two successes deposit 2 * 0.5 tokens
            policy.call(lambda: "ok", idempotent=True, key="site")
        fn, state = self._flaky(failures=1)
        assert policy.call(fn, idempotent=True, key="site") == "ok"
        assert state["calls"] == 2

    def test_without_budget_behaviour_is_unchanged(self):
        policy = RetryPolicy(max_attempts=3, sleep=lambda __: None)
        fn, state = self._flaky(failures=2)
        assert policy.call(fn, idempotent=True) == "ok"
        assert state["calls"] == 3

    def test_retries_run_with_attempt_marked_in_the_call_policy(self):
        # The transport refills the per-endpoint budget only when
        # current_policy().attempt == 1; a policy-level retry must not
        # masquerade as a fresh first attempt and mint its own tokens.
        policy = RetryPolicy(max_attempts=3, sleep=lambda __: None)
        seen = []

        def fn():
            seen.append(current_policy().attempt)
            if len(seen) < 3:
                raise CommFailure("flap")
            return "ok"

        assert policy.call(fn, idempotent=True) == "ok"
        assert seen == [1, 2, 3]
        # The marking is scoped to the attempt, not leaked afterwards.
        assert current_policy().attempt == 1
