"""System facade tests: wiring, metrics, and the four layers (F3)."""

import pytest

from repro.apps.healthcare import topology as topo
from repro.core.model import SourceDescription
from repro.core.system import WebFinditSystem
from repro.errors import UnknownDatabase, WebFinditError
from repro.orb.products import ORBIX, ORBIXWEB, VISIBROKER
from repro.sql.engine import Database


class TestWiring:
    def test_one_orb_per_product(self, healthcare):
        products = {orb.product for orb in healthcare.system.orbs()}
        assert products == {"Orbix", "OrbixWeb", "VisiBroker for Java"}

    def test_naming_contains_codb_and_isi_bindings(self, healthcare):
        names = healthcare.system.naming.list_names("webfindit/")
        codbs = [n for n in names if n.startswith("webfindit/codb/")]
        isis = [n for n in names if n.startswith("webfindit/isi/")]
        assert len(codbs) == 14
        assert len(isis) == 14

    def test_codatabase_client_is_remote(self, healthcare):
        system = healthcare.system
        system.reset_metrics()
        client = system.codatabase_client(topo.RBH)
        client.memberships()
        metrics = system.metrics()
        assert metrics["giop_messages"] >= 1

    def test_wrapper_client_is_remote(self, healthcare):
        isi = healthcare.system.wrapper_client(topo.RBH)
        assert isi.banner == "Oracle 8.0.5"

    def test_unknown_database_clients(self, healthcare):
        with pytest.raises(UnknownDatabase):
            healthcare.system.codatabase_client("Ghost")
        with pytest.raises(UnknownDatabase):
            healthcare.system.wrapper_client("Ghost")
        with pytest.raises(UnknownDatabase):
            healthcare.system.local_wrapper("Ghost")

    def test_duplicate_deployment_rejected(self):
        system = WebFinditSystem()
        db = Database("Twin", dialect="oracle")
        description = SourceDescription(name="Twin",
                                        information_type="stuff")
        system.register_relational_source(db, description)
        with pytest.raises(WebFinditError):
            system.register_relational_source(
                Database("Twin2", dialect="oracle"),
                SourceDescription(name="Twin", information_type="stuff"))

    def test_browser_requires_registered_home(self, healthcare):
        with pytest.raises(UnknownDatabase):
            healthcare.system.browser("Nowhere")

    def test_description_autofilled_on_deploy(self, healthcare):
        description = healthcare.system.registry.source(topo.RBH)
        assert description.dbms == "Oracle"
        assert description.orb_product == "VisiBroker for Java"
        assert description.interface == ["ResearchProjects",
                                         "PatientHistory"]


class TestFourLayers:
    """Figure 3: a query crosses browser -> query processor ->
    communication -> meta-data/data layers, measurably."""

    def test_meta_query_touches_communication_and_metadata_layers(
            self, healthcare):
        system = healthcare.system
        browser = healthcare.browser()
        system.reset_metrics()
        browser.find("Medical Research")
        metrics = system.metrics()
        assert metrics["giop_messages"] >= 3  # find + links + neighbors

    def test_data_query_reaches_data_layer(self, healthcare):
        system = healthcare.system
        browser = healthcare.browser()
        db = healthcare.relational[topo.RBH]
        executed_before = db.statements_executed
        system.reset_metrics()
        browser.fetch(topo.RBH, "SELECT COUNT(*) FROM Patient")
        assert db.statements_executed == executed_before + 1
        assert system.metrics()["giop_messages"] >= 1

    def test_cross_product_traffic_happens(self, healthcare):
        """The system ORB (client side) differs from all three product
        ORBs, so every call is cross-product — CORBA 2.0 interop."""
        system = healthcare.system
        system.reset_metrics()
        healthcare.browser().find("Medical Insurance")
        per_orb = system.metrics()["orbs"]
        product_trio = {"Orbix", "OrbixWeb", "VisiBroker for Java"}
        handled = sum(stats["requests_handled"]
                      for product, stats in per_orb.items()
                      if product in product_trio)
        cross = sum(stats["cross_product_requests"]
                    for product, stats in per_orb.items()
                    if product in product_trio)
        assert handled > 0
        assert cross == handled

    def test_metrics_reset(self, healthcare):
        system = healthcare.system
        healthcare.browser().find("Medical")
        system.reset_metrics()
        metrics = system.metrics()
        assert metrics["giop_messages"] == 0
