"""Discovery-algorithm tests over in-process co-databases."""

import pytest

from repro.core.discovery import CoDatabaseClient, DiscoveryEngine
from repro.core.model import SourceDescription
from repro.core.registry import Registry
from repro.core.service_link import EndpointKind, ServiceLink
from repro.errors import DiscoveryFailure


def description(name, info):
    return SourceDescription(name=name, information_type=info,
                             location=f"{name}.net")


@pytest.fixture()
def world():
    """A miniature medical world: QUT in Research; RBH in Research and
    Medical; Medibank in Insurance; link Medical -> Insurance."""
    registry = Registry()
    registry.add_source(description("QUT", "Medical Research"))
    registry.add_source(description("RBH", "Research and Medical"))
    registry.add_source(description("Medibank", "Medical Insurance"))
    registry.add_source(description("PCH", "Medical"))
    registry.create_coalition("Research", "Medical Research")
    registry.create_coalition("Medical", "Medical")
    registry.create_coalition("Insurance", "Medical Insurance")
    registry.join("QUT", "Research")
    registry.join("RBH", "Research")
    registry.join("RBH", "Medical")
    registry.join("PCH", "Medical")
    registry.join("Medibank", "Insurance")
    registry.add_service_link(ServiceLink(
        EndpointKind.COALITION, "Medical", EndpointKind.COALITION,
        "Insurance", information_type="Medical Insurance"))
    return registry


def engine_for(registry, **kwargs):
    return DiscoveryEngine(
        lambda name: CoDatabaseClient.for_local(registry.codatabase(name)),
        **kwargs)


class TestLocalResolution:
    def test_local_full_match_stops_immediately(self, world):
        engine = engine_for(world)
        result = engine.discover("Medical Research", "QUT")
        assert result.resolved
        assert result.best().name == "Research"
        assert result.codatabases_contacted == 1
        assert result.max_depth_reached == 0

    def test_leads_carry_members(self, world):
        result = engine_for(world).discover("Medical Research", "QUT")
        assert set(result.best().members) == {"QUT", "RBH"}

    def test_trace_records_path(self, world):
        result = engine_for(world).discover("Medical Research", "QUT")
        assert any("QUT" in line for line in result.trace)


class TestRemoteResolution:
    def test_paper_walkthrough_medical_insurance(self, world):
        """§2.3: QUT asks for Medical Insurance; Research fails; RBH's
        co-database reveals the Medical -> Insurance link."""
        result = engine_for(world).discover("Medical Insurance", "QUT")
        assert result.resolved
        best = result.best()
        assert best.name == "Insurance"
        assert best.through_link == "Medical_to_Insurance"
        assert best.via == ["QUT", "RBH"]
        assert best.score == 1.0
        assert result.codatabases_contacted >= 2

    def test_link_lead_has_contact_entry(self, world):
        result = engine_for(world).discover("Medical Insurance", "QUT")
        assert result.best().entry_database == "Medibank"

    def test_partial_matches_do_not_stop_search(self, world):
        result = engine_for(world).discover("Medical Insurance", "QUT")
        partials = [lead for lead in result.leads if lead.score < 1.0]
        assert partials  # Research/Medical at 0.5 are reported as leads

    def test_unresolvable_query(self, world):
        result = engine_for(world).discover("quantum chromodynamics", "QUT")
        assert not result.resolved
        with pytest.raises(DiscoveryFailure):
            result.best()

    def test_max_hops_bounds_exploration(self, world):
        result = engine_for(world).discover("Medical Insurance", "QUT",
                                            max_hops=0)
        assert not any(lead.score >= 1.0 for lead in result.leads)

    def test_exhaustive_sweep(self, world):
        result = engine_for(world).discover("Medical", "QUT",
                                            stop_at_first=False)
        names = {lead.name for lead in result.leads}
        assert "Medical" in names
        # sweep touches more co-databases than the early-stop run
        early = engine_for(world).discover("Medical", "QUT")
        assert result.codatabases_contacted >= early.codatabases_contacted

    def test_leads_sorted_by_score_then_hops(self, world):
        result = engine_for(world).discover("Medical Insurance", "QUT")
        scores = [lead.score for lead in result.leads]
        assert scores == sorted(scores, reverse=True)

    def test_each_codatabase_contacted_once(self, world):
        result = engine_for(world).discover("Medical Insurance", "QUT",
                                            stop_at_first=False, max_hops=8)
        assert result.codatabases_contacted <= 4  # |databases| upper bound


class TestClientAdapter:
    def test_local_client_counts_calls(self, world):
        client = CoDatabaseClient.for_local(world.codatabase("QUT"))
        client.find_coalitions("x")
        client.memberships()
        client.service_links()
        assert client.calls == 3

    def test_wire_and_local_results_agree(self, world):
        local = CoDatabaseClient.for_local(world.codatabase("RBH"))
        assert local.memberships() == ["Research", "Medical"]
        links = local.service_links()
        assert links and links[0].to_name == "Insurance"
        instance = local.describe_instance("RBH")
        assert instance["information_type"] == "Research and Medical"
