"""Deadline budgets, circuit-breaker skips, and the degraded report."""

import itertools
import threading

import pytest

from repro.core.discovery import (SKIPPED, TIMED_OUT, TRIPPED, UNREACHABLE,
                                  CoDatabaseClient, DegradedReport,
                                  DiscoveryEngine)
from repro.core.model import SourceDescription
from repro.core.registry import Registry
from repro.core.resilience import (Deadline, HealthBoard, ResiliencePolicy,
                                   RetryPolicy)
from repro.core.service_link import EndpointKind, ServiceLink
from repro.errors import CommFailure, DeadlineExceeded


def build_world():
    registry = Registry()
    for name, info in [("QUT", "Medical Research"),
                       ("RBH", "Research and Medical"),
                       ("RMIT", "Medical Research"),
                       ("Medibank", "Medical Insurance")]:
        registry.add_source(SourceDescription(name=name,
                                              information_type=info))
    registry.create_coalition("Research", "Medical Research")
    registry.create_coalition("Medical", "Medical")
    registry.create_coalition("Insurance", "Medical Insurance")
    registry.join("QUT", "Research")
    registry.join("RBH", "Research")
    registry.join("RMIT", "Research")
    registry.join("RBH", "Medical")
    registry.join("Medibank", "Insurance")
    registry.add_service_link(ServiceLink(
        EndpointKind.COALITION, "Medical", EndpointKind.COALITION,
        "Insurance", information_type="Medical Insurance"))
    return registry


class FakeClock:
    def __init__(self):
        self.now = 0.0
        self._lock = threading.Lock()

    def __call__(self):
        with self._lock:
            return self.now

    def advance(self, seconds):
        with self._lock:
            self.now += seconds


def make_engine(registry, dead=(), clock=None, policy=None, **kwargs):
    dead = set(dead)

    def resolver(name: str) -> CoDatabaseClient:
        if name in dead:
            raise CommFailure(f"connection refused: {name}")
        if clock is not None:
            clock.advance(1.0)  # each consultation costs one tick
        return CoDatabaseClient.for_local(registry.codatabase(name))

    return DiscoveryEngine(resolver, policy=policy, **kwargs)


class TestDegradedReport:
    def test_empty_report_is_falsy(self):
        report = DegradedReport()
        assert not report
        assert report.summary() == "no degradation"

    def test_summary_groups_by_reason(self):
        report = DegradedReport()
        report.add("RMIT", UNREACHABLE, "refused", depth=1)
        report.add("Medibank", TRIPPED, depth=2)
        report.add("RBH", UNREACHABLE, depth=1)
        assert len(report) == 3
        assert report.by_reason()[UNREACHABLE] == ["RMIT", "RBH"]
        summary = report.summary()
        assert "3 co-database(s) skipped" in summary
        assert "tripped: Medibank" in summary
        assert "unreachable: RMIT, RBH" in summary


class TestDegradedDiscovery:
    def test_unreachable_recorded_with_reason(self):
        registry = build_world()
        engine = make_engine(registry, dead={"RMIT"})
        result = engine.discover("Medical Insurance", "QUT")
        assert result.resolved
        assert result.partial
        assert result.unreachable == ["RMIT"]
        assert result.degraded.by_reason()[UNREACHABLE] == ["RMIT"]
        # back-compat: unreachable is a subset of the degraded names
        assert set(result.unreachable) <= set(result.degraded.names())

    def test_healthy_run_reports_no_degradation(self):
        registry = build_world()
        engine = make_engine(registry)
        result = engine.discover("Medical Insurance", "QUT")
        assert result.resolved
        assert not result.partial
        assert not result.degraded

    def test_deadline_spent_marks_frontier_skipped(self):
        clock = FakeClock()
        registry = build_world()
        # Budget of 1 tick: depth 0 costs exactly it, so the whole
        # depth-1 frontier (RBH, RMIT) is skipped before consultation.
        engine = make_engine(registry, clock=clock)
        deadline = Deadline(1.0, clock=clock)
        result = engine.discover("Medical Insurance", "QUT",
                                 deadline=deadline)
        skipped = set(result.degraded.by_reason().get(SKIPPED, []))
        assert skipped == {"RBH", "RMIT"}
        assert result.partial
        # Local depth-0 answers are still reported.
        assert result.max_depth_reached >= 0

    def test_mid_frontier_deadline_skips_remainder(self):
        clock = FakeClock()
        registry = build_world()
        # 2 ticks: QUT (1) + RBH (1) spend it all, RMIT's turn never comes.
        engine = make_engine(registry, clock=clock)
        result = engine.discover("Medical Insurance", "QUT",
                                 deadline=Deadline(2.0, clock=clock))
        reasons = result.degraded.by_reason()
        assert "RMIT" in reasons.get(SKIPPED, [])
        assert "RBH" not in result.degraded.names()

    def test_timed_out_consultation_classified(self):
        registry = build_world()
        ticking = itertools.count()

        def resolver(name):
            if name == "RMIT":
                raise DeadlineExceeded("consultation overran the budget")
            next(ticking)
            return CoDatabaseClient.for_local(registry.codatabase(name))

        engine = DiscoveryEngine(resolver)
        result = engine.discover("Medical Insurance", "QUT",
                                 deadline=Deadline.after(30.0))
        assert result.degraded.by_reason().get(TIMED_OUT) == ["RMIT"]
        assert "RMIT" in result.unreachable

    def test_open_breaker_skips_without_consulting(self):
        registry = build_world()
        board = HealthBoard(failure_threshold=1)
        board.record("RMIT", ok=False)  # already known dead
        policy = ResiliencePolicy(
            retry=RetryPolicy(max_attempts=1, sleep=lambda _s: None),
            health=board)
        calls = []

        def resolver(name):
            calls.append(name)
            return CoDatabaseClient.for_local(registry.codatabase(name))

        engine = DiscoveryEngine(resolver, policy=policy)
        result = engine.discover("Medical Insurance", "QUT",
                                 stop_at_first=False, max_hops=2)
        assert "RMIT" not in calls
        assert result.degraded.by_reason().get(TRIPPED) == ["RMIT"]
        assert result.resolved

    def test_breaker_never_blocks_depth_zero(self):
        registry = build_world()
        board = HealthBoard(failure_threshold=1)
        board.record("QUT", ok=False)
        policy = ResiliencePolicy(
            retry=RetryPolicy(max_attempts=1, sleep=lambda _s: None),
            health=board)
        engine = make_engine(registry, policy=policy)
        # The user's own repository is always attempted.
        result = engine.discover("Medical Research", "QUT")
        assert result.resolved

    def test_policy_records_health_and_trips_across_queries(self):
        registry = build_world()
        policy = ResiliencePolicy(
            retry=RetryPolicy(max_attempts=1, sleep=lambda _s: None),
            health=HealthBoard(failure_threshold=2))
        engine = make_engine(registry, dead={"RMIT"}, policy=policy)
        first = engine.discover("Medical Insurance", "QUT")
        assert "RMIT" in first.unreachable
        second = engine.discover("Medical Insurance", "QUT")
        assert "RMIT" in second.unreachable  # breaker not yet open
        third = engine.discover("Medical Insurance", "QUT")
        # Two recorded failures opened the circuit: now skipped unvisited.
        assert third.degraded.by_reason().get(TRIPPED) == ["RMIT"]
        assert policy.health.state("RMIT") == "open"

    def test_retries_recover_transient_failure(self):
        registry = build_world()
        failures = {"RMIT": 2}

        def resolver(name):
            if failures.get(name, 0) > 0:
                failures[name] -= 1
                raise CommFailure(f"transient blip at {name}")
            return CoDatabaseClient.for_local(registry.codatabase(name))

        policy = ResiliencePolicy(
            retry=RetryPolicy(max_attempts=3, sleep=lambda _s: None,
                              seed=1),
            health=HealthBoard(failure_threshold=5))
        engine = DiscoveryEngine(resolver, policy=policy)
        result = engine.discover("Medical Insurance", "QUT",
                                 stop_at_first=False, max_hops=2)
        assert "RMIT" not in result.unreachable
        assert not result.degraded
        assert policy.retry.retries >= 2

    def test_parallel_engine_reports_same_degradation(self):
        registry = build_world()
        sequential = make_engine(registry, dead={"RMIT"})
        parallel = make_engine(registry, dead={"RMIT"}, parallel=True,
                               max_workers=4)
        try:
            seq = sequential.discover("Medical Insurance", "QUT",
                                      stop_at_first=False, max_hops=3)
            par = parallel.discover("Medical Insurance", "QUT",
                                    stop_at_first=False, max_hops=3)
            assert [lead.name for lead in seq.leads] == \
                [lead.name for lead in par.leads]
            assert seq.unreachable == par.unreachable
            assert seq.degraded.names() == par.degraded.names()
        finally:
            parallel.close()

    def test_depth_zero_failure_still_raises(self):
        registry = build_world()
        engine = make_engine(registry, dead={"QUT"})
        with pytest.raises(CommFailure):
            engine.discover("anything", "QUT",
                            deadline=Deadline.after(30.0))
