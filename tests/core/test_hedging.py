"""Hedged requests: the adaptive delay policy and the failover client's
primary/backup race."""

import threading
import time

import pytest

from repro.core.replication import FailoverCoDatabaseClient, ReplicaTarget
from repro.core.resilience import HealthBoard, HedgePolicy
from repro.deadline import Deadline, call_policy
from repro.errors import CommFailure


class TestHedgePolicy:
    def test_default_delay_until_enough_samples(self):
        policy = HedgePolicy(default_delay=0.07, min_samples=5)
        assert policy.hedge_delay("db") == 0.07
        for __ in range(4):
            policy.observe("db", 0.001)
        assert policy.hedge_delay("db") == 0.07  # still warming up

    def test_delay_tracks_the_tail_percentile(self):
        policy = HedgePolicy(percentile=0.99, min_samples=20, window=256)
        for index in range(100):
            policy.observe("db", 0.010 if index < 99 else 0.500)
        # p99 of 99x10ms + 1x500ms is the outlier itself.
        assert policy.hedge_delay("db") == 0.500
        # Keys are independent: an unseen key keeps the default.
        assert policy.hedge_delay("other") == policy.default_delay

    def test_window_forgets_old_outliers(self):
        policy = HedgePolicy(min_samples=5, window=10)
        policy.observe("db", 5.0)
        for __ in range(10):
            policy.observe("db", 0.01)
        assert policy.hedge_delay("db") == pytest.approx(0.01)

    def test_hedge_counters(self):
        policy = HedgePolicy()
        policy.record_hedge(won=True)
        policy.record_hedge(won=False)
        policy.record_hedge(won=False)
        assert policy.snapshot() == {"hedges_fired": 3, "hedges_won": 1,
                                     "hedges_lost": 2}


class FakeProxy:
    """A co-database stand-in with scriptable latency/failure."""

    def __init__(self, value, latency=0.0, failures=0):
        self.value = value
        self.latency = latency
        self.failures = failures
        self.calls = []
        self._lock = threading.Lock()

    def invoke(self, operation, *args):
        with self._lock:
            self.calls.append(operation)
        if operation == "epoch":
            return 1
        if self.latency:
            time.sleep(self.latency)
        with self._lock:
            if self.failures > 0:
                self.failures -= 1
                raise CommFailure(f"{self.value} down")
        return self.value


def _client(primary, backup, hedge):
    def target(key, proxy):
        return ReplicaTarget(key=key, binding=key,
                             proxy=lambda: proxy,
                             refresh=lambda: (proxy, False))

    return FailoverCoDatabaseClient(
        "rbh", [target("rbh#0", primary), target("rbh#1", backup)],
        health=HealthBoard(), hedge=hedge)


class TestHedgedFailoverClient:
    def test_fast_primary_never_hedges(self):
        primary = FakeProxy("primary")
        backup = FakeProxy("backup")
        hedge = HedgePolicy(default_delay=0.2)
        client = _client(primary, backup, hedge)
        for __ in range(3):
            assert client._routed_call("lookup") == "primary"
        assert hedge.snapshot()["hedges_fired"] == 0
        assert backup.calls == []
        assert client.failovers == 0

    def test_slow_primary_hedges_and_backup_wins(self):
        primary = FakeProxy("primary", latency=0.5)
        backup = FakeProxy("backup")
        hedge = HedgePolicy(default_delay=0.02)
        client = _client(primary, backup, hedge)
        started = time.monotonic()
        assert client._routed_call("lookup") == "backup"
        elapsed = time.monotonic() - started
        assert elapsed < 0.4  # did not wait out the slow primary
        assert hedge.snapshot()["hedges_won"] == 1
        assert client.failovers == 1  # now served by the backup

    def test_fast_primary_failure_fails_over_without_hedging(self):
        primary = FakeProxy("primary", failures=1)
        backup = FakeProxy("backup")
        hedge = HedgePolicy(default_delay=0.2)
        client = _client(primary, backup, hedge)
        assert client._routed_call("lookup") == "backup"
        # A fast failure is plain failover, not a hedge.
        assert hedge.snapshot()["hedges_fired"] == 0
        assert client.failovers == 1

    def test_backup_failure_falls_back_to_slow_primary(self):
        primary = FakeProxy("primary", latency=0.1)
        backup = FakeProxy("backup", failures=5)
        hedge = HedgePolicy(default_delay=0.02)
        client = _client(primary, backup, hedge)
        assert client._routed_call("lookup") == "primary"
        snapshot = hedge.snapshot()
        assert snapshot["hedges_fired"] == 1
        assert snapshot["hedges_lost"] == 1
        assert client.failovers == 0

    def test_backup_failure_does_not_outwait_the_deadline(self):
        # The hedge fired because the primary is tail-slow; when the
        # backup then fails, the caller must get the failure within
        # its deadline budget instead of stalling behind the straggler.
        primary = FakeProxy("primary", latency=0.5)
        backup = FakeProxy("backup", failures=5)
        hedge = HedgePolicy(default_delay=0.02)
        client = _client(primary, backup, hedge)
        started = time.monotonic()
        with call_policy(deadline=Deadline(0.1)):
            with pytest.raises(CommFailure):
                client._routed_call("lookup")
        elapsed = time.monotonic() - started
        assert elapsed < 0.4  # did not wait out the 0.5s primary
        assert hedge.snapshot()["hedges_lost"] == 1

    def test_both_sides_failing_raises(self):
        primary = FakeProxy("primary", latency=0.1, failures=5)
        backup = FakeProxy("backup", failures=5)
        hedge = HedgePolicy(default_delay=0.02)
        client = _client(primary, backup, hedge)
        with pytest.raises(CommFailure):
            client._routed_call("lookup")
        assert hedge.snapshot()["hedges_fired"] == 1

    def test_no_hedge_policy_keeps_sequential_failover(self):
        primary = FakeProxy("primary", failures=1)
        backup = FakeProxy("backup")
        client = _client(primary, backup, hedge=None)
        assert client._routed_call("lookup") == "backup"
        assert client.failovers == 1
