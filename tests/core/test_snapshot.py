"""Topology export/import round-trips."""

import json

import pytest

from repro.core.model import SourceDescription
from repro.core.registry import Registry
from repro.core.service_link import EndpointKind, ServiceLink
from repro.core.snapshot import (export_topology, import_topology,
                                 load_topology, save_topology)
from repro.errors import WebFinditError


def build_registry():
    registry = Registry()
    for name, info in [("A", "cardiology"), ("B", "cardiology"),
                       ("C", "insurance")]:
        registry.add_source(SourceDescription(
            name=name, information_type=info, location=f"{name}.net",
            interface=[f"{name}Data"]))
    registry.create_coalition("Cardio", "cardiology")
    registry.create_coalition("Pediatric Cardio", "pediatric cardiology",
                              parent="Cardio")
    registry.create_coalition("Ins", "insurance")
    registry.join("A", "Cardio")
    registry.join("B", "Pediatric Cardio")
    registry.join("C", "Ins")
    registry.add_service_link(ServiceLink(
        EndpointKind.COALITION, "Cardio", EndpointKind.COALITION, "Ins",
        information_type="insurance"))
    registry.attach_document("A", "html", "<p>About A</p>", "http://a")
    return registry


class TestRoundTrip:
    def test_summary_preserved(self):
        original = build_registry()
        restored = import_topology(export_topology(original))
        assert restored.summary() == original.summary()

    def test_descriptions_preserved(self):
        restored = import_topology(export_topology(build_registry()))
        description = restored.source("A")
        assert description.location == "A.net"
        assert description.interface == ["AData"]

    def test_hierarchy_preserved(self):
        restored = import_topology(export_topology(build_registry()))
        assert restored.coalition("Pediatric Cardio").parent == "Cardio"
        # parent members see the specialization in their co-databases
        assert restored.codatabase("A").subclasses_of("Cardio") == \
            ["Pediatric Cardio"]

    def test_links_and_contacts_preserved(self):
        restored = import_topology(export_topology(build_registry()))
        link = restored.service_links()[0]
        assert link.label == "Cardio_to_Ins"
        assert link.contact == "C"

    def test_documents_preserved(self):
        restored = import_topology(export_topology(build_registry()))
        documents = restored.codatabase("A").documents_of("A")
        assert documents == [{"format": "html", "content": "<p>About A</p>",
                              "url": "http://a"}]

    def test_codatabases_answer_after_restore(self):
        restored = import_topology(export_topology(build_registry()))
        matches = restored.codatabase("A").find_coalitions("cardiology")
        assert matches and matches[0]["name"] == "Cardio"

    def test_export_is_json_serializable(self):
        payload = export_topology(build_registry())
        json.dumps(payload)  # must not raise

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "topology.json"
        save_topology(build_registry(), str(path))
        restored = load_topology(str(path))
        assert restored.summary() == build_registry().summary()

    def test_parents_resolved_out_of_order(self):
        payload = export_topology(build_registry())
        payload["coalitions"].reverse()  # children before parents
        restored = import_topology(payload)
        assert restored.coalition("Pediatric Cardio").parent == "Cardio"


class TestValidation:
    def test_wrong_format_rejected(self):
        with pytest.raises(WebFinditError):
            import_topology({"format": "something-else"})

    def test_dangling_parent_rejected(self):
        payload = export_topology(build_registry())
        for coalition in payload["coalitions"]:
            if coalition["name"] == "Pediatric Cardio":
                coalition["parent"] = "Ghost"
        with pytest.raises(WebFinditError):
            import_topology(payload)

    def test_healthcare_world_round_trips(self, healthcare):
        payload = export_topology(healthcare.system.registry)
        restored = import_topology(payload)
        assert restored.summary() == healthcare.system.registry.summary()
        rbh = restored.codatabase("Royal Brisbane Hospital")
        assert rbh.memberships == ["Research", "Medical"]
        assert len(rbh.documents_of("Royal Brisbane Hospital")) == 2


class TestEpochRoundTrip:
    """Replication satellite: epochs and documents survive snapshots."""

    def test_topology_export_carries_epochs(self):
        registry = build_registry()
        payload = export_topology(registry)
        assert payload["epochs"] == registry.epochs()
        assert all(epoch > 0 for epoch in payload["epochs"].values())

    def test_topology_import_restores_epochs(self):
        registry = build_registry()
        restored = import_topology(export_topology(registry))
        assert restored.epochs() == registry.epochs()

    def test_documents_round_trip(self):
        registry = build_registry()
        restored = import_topology(export_topology(registry))
        original_docs = registry.codatabase("A").documents_of("A")
        assert restored.codatabase("A").documents_of("A") == original_docs
        assert original_docs  # the fixture attaches one

    def test_epoch_is_authoritative_not_recounted(self):
        """An imported registry's epochs reflect federation history, not
        however many writes the rebuild itself performed."""
        registry = build_registry()
        registry.codatabase("A").epoch = 99
        restored = import_topology(export_topology(registry))
        assert restored.codatabase("A").epoch == 99
