"""Coalition and service-link unit tests."""

import pytest

from repro.core.coalition import Coalition
from repro.core.service_link import EndpointKind, ServiceLink
from repro.errors import MembershipError, WebFinditError


class TestCoalition:
    def test_membership_cycle(self):
        coalition = Coalition("Medical", "Medical")
        coalition.add_member("RBH")
        assert coalition.has_member("RBH")
        coalition.remove_member("RBH")
        assert not coalition.has_member("RBH")

    def test_double_join_rejected(self):
        coalition = Coalition("Medical", "Medical")
        coalition.add_member("RBH")
        with pytest.raises(MembershipError):
            coalition.add_member("RBH")

    def test_leave_non_member_rejected(self):
        with pytest.raises(MembershipError):
            Coalition("Medical", "Medical").remove_member("RBH")

    def test_wire_roundtrip(self):
        coalition = Coalition("Research", "Medical Research",
                              parent="Science", doc="docs",
                              members=["QUT", "RBH"])
        assert Coalition.from_wire(coalition.to_wire()) == coalition


class TestServiceLink:
    def make(self, from_kind=EndpointKind.DATABASE, from_name="ATO",
             to_kind=EndpointKind.COALITION, to_name="Medical"):
        return ServiceLink(from_kind=from_kind, from_name=from_name,
                           to_kind=to_kind, to_name=to_name,
                           information_type="Taxation")

    def test_kind_classification(self):
        cc = self.make(EndpointKind.COALITION, "A", EndpointKind.COALITION, "B")
        dd = self.make(EndpointKind.DATABASE, "A", EndpointKind.DATABASE, "B")
        dc = self.make()
        assert cc.kind == "coalition-coalition"
        assert dd.kind == "database-database"
        assert dc.kind == "coalition-database"

    def test_label_matches_figure1_style(self):
        link = ServiceLink(EndpointKind.DATABASE, "State Government Funding",
                           EndpointKind.DATABASE, "Medicare")
        assert link.label == "StateGovernmentFunding_to_Medicare"

    def test_involves(self):
        link = self.make()
        assert link.involves(EndpointKind.DATABASE, "ATO")
        assert link.involves(EndpointKind.COALITION, "Medical")
        assert not link.involves(EndpointKind.DATABASE, "Medical")

    def test_wire_roundtrip_preserves_contact(self):
        link = ServiceLink(EndpointKind.COALITION, "Medical",
                           EndpointKind.COALITION, "Medical Insurance",
                           information_type="Medical Insurance",
                           contact="Medibank")
        assert ServiceLink.from_wire(link.to_wire()) == link

    def test_endpoint_kind_parse(self):
        assert EndpointKind.parse("COALITION") is EndpointKind.COALITION
        with pytest.raises(WebFinditError):
            EndpointKind.parse("cluster")
