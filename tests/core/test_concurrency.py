"""Concurrent sessions against one federation.

The paper's browser is multi-user (applets everywhere); the engines and
ORB must tolerate parallel sessions.  These tests drive several browser
threads at once and check both correctness and counter consistency.
"""

import threading

from repro.apps.healthcare import topology as topo
from repro.sql.engine import Database


class TestConcurrentSessions:
    def test_parallel_metadata_queries(self, healthcare):
        errors: list[Exception] = []
        results: list[str] = []

        def explore():
            try:
                browser = healthcare.browser(topo.QUT)
                outcome = browser.find("Medical Insurance")
                results.append(outcome.data.best().name)
            except Exception as exc:  # noqa: BLE001 - collected for assert
                errors.append(exc)

        threads = [threading.Thread(target=explore) for __ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert results == [topo.MEDICAL_INSURANCE] * 8

    def test_parallel_data_queries(self, healthcare):
        errors: list[Exception] = []
        counts: list[int] = []

        def fetch():
            try:
                browser = healthcare.browser(topo.QUT)
                result = browser.fetch(
                    topo.RBH, "SELECT COUNT(*) FROM MedicalStudent")
                counts.append(result.data.scalar())
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=fetch) for __ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert counts == [12] * 8

    def test_mixed_meta_and_data_load(self, healthcare):
        errors: list[Exception] = []

        def worker(index: int):
            try:
                browser = healthcare.browser(topo.QUT)
                if index % 2:
                    browser.instances("Research")
                else:
                    browser.invoke(topo.RBH, "ResearchProjects", "Funding",
                                   "AIDS and drugs")
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(12)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors


class TestEngineThreadSafety:
    def test_concurrent_inserts_all_land(self):
        db = Database("threads")
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, worker INT)")
        errors: list[Exception] = []

        def insert(worker: int):
            try:
                for index in range(50):
                    db.execute("INSERT INTO t VALUES (?, ?)",
                               [worker * 1000 + index, worker])
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=insert, args=(w,))
                   for w in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == 200
        per_worker = db.execute(
            "SELECT worker, COUNT(*) FROM t GROUP BY worker ORDER BY 1")
        assert per_worker.rows == [(0, 50), (1, 50), (2, 50), (3, 50)]

    def test_concurrent_readers_during_writes(self):
        db = Database("rw")
        db.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        stop = threading.Event()
        errors: list[Exception] = []

        def writer():
            try:
                for index in range(200):
                    db.execute("INSERT INTO t VALUES (?)", [index])
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)
            finally:
                stop.set()

        def reader():
            try:
                while not stop.is_set():
                    count = db.execute("SELECT COUNT(*) FROM t").scalar()
                    assert 0 <= count <= 200
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=writer)] + \
            [threading.Thread(target=reader) for __ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert db.row_count("t") == 200
