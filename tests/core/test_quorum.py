"""Quorum replication: lease election, fencing, and failover.

Every test drives :class:`~repro.core.replication.ReplicatedCoDatabase`
with an injectable clock (and a fake ``sleep`` that advances it), so
lease expiry — the thing the whole protocol turns on — is exercised
deterministically, never by real waiting.
"""

import pytest

from repro.core.journal import ReplicaJournal
from repro.core.quorum import LeaseState, PrimaryLease, majority
from repro.core.replication import ReplicatedCoDatabase
from repro.errors import (ElectionLost, FencedOut, LeaseExpired,
                          QuorumError, QuorumLost)

LEASE = 10.0


class FakeTime:
    """A controllable monotonic clock whose sleep() advances it."""

    def __init__(self):
        self.now = 0.0

    def clock(self):
        return self.now

    def sleep(self, duration):
        self.now += duration


def build(replicas=3, **kwargs):
    fake = FakeTime()
    facade = ReplicatedCoDatabase(
        "Alpha", replicas=replicas, quorum=True, lease_duration=LEASE,
        clock=fake.clock, sleep=fake.sleep, **kwargs)
    return facade, fake


def cut_minority(facade, *indices):
    """Partition the named replicas away from the rest of the set."""
    minority = {facade.runtimes[i].endpoint for i in indices}

    def link(a, b):
        return not ((a in minority) ^ (b in minority))

    facade._link = link


# ------------------------------------------------------------- primitives --


def test_majority_of_configured_set():
    assert majority(1) == 1
    assert majority(2) == 2
    assert majority(3) == 2
    assert majority(4) == 3
    assert majority(5) == 3


def test_lease_grant_refuses_stale_fence():
    state = LeaseState()
    assert state.grant(0, 1, now=0.0, duration=LEASE)
    assert not state.grant(1, 1, now=0.0, duration=LEASE)  # same fence
    assert not state.grant(1, 0, now=0.0, duration=LEASE)  # older fence
    assert state.promised_fence == 1 and state.holder == 0


def test_lease_grant_refuses_other_holder_until_expiry():
    state = LeaseState()
    assert state.grant(0, 1, now=0.0, duration=LEASE)
    # A different candidate with a newer fence must still wait the
    # lease out — mutual exclusion is the point of the lease.
    assert not state.grant(1, 2, now=LEASE / 2, duration=LEASE)
    # The incumbent itself may renew at a newer fence mid-lease.
    assert state.grant(0, 2, now=LEASE / 2, duration=LEASE)
    # And once expired, anyone with a newer fence may take over.
    assert state.grant(1, 3, now=LEASE / 2 + LEASE + 1, duration=LEASE)
    assert state.holder == 1 and state.promised_fence == 3


def test_lease_admits_only_current_or_newer_fences():
    state = LeaseState()
    state.grant(0, 3, now=0.0, duration=LEASE)
    assert state.admits(3) and state.admits(4)
    assert not state.admits(2)


# -------------------------------------------------------------- elections --


def test_first_election_wins_fence_one_with_all_grants():
    facade, _ = build()
    lease = facade.elect()
    assert lease.index == 0 and lease.fence == 1
    assert lease.grants == frozenset({0, 1, 2})
    assert facade.elections == 1
    assert all(r.lease.promised_fence == 1 for r in facade.runtimes)


def test_minority_candidate_cannot_win():
    facade, _ = build(replicas=5)
    cut_minority(facade, 0, 1)
    with pytest.raises(ElectionLost):
        facade.elect(candidate_index=0)
    # Even a failed candidacy advances its own promise (the
    # Paxos-prepare effect) but never produces a lease.
    assert facade._lease is None


def test_majority_side_elects_after_old_lease_expires():
    facade, fake = build()
    facade.elect()
    cut_minority(facade, 0)
    with pytest.raises(ElectionLost):
        facade.elect(candidate_index=1)  # r0's lease still unexpired
    fake.now += LEASE + 1
    lease = facade.elect(candidate_index=1)
    assert lease.index == 1 and lease.fence == 2


# ----------------------------------------------------------- quorum writes --


def test_quorum_write_commits_on_every_reachable_replica():
    facade, _ = build()
    facade.attach_document("s1", "html", "<p>one</p>", "http://one")
    assert facade.epoch == 1
    for runtime in facade.runtimes:
        assert runtime.epoch == 1
        assert runtime.journal.entries()[-1].fence == 1
        assert runtime.codatabase.documents_of("s1")


def test_partitioned_primary_fails_over_and_write_commits():
    facade, fake = build()
    facade.attach_document("s1", "html", "one", "")
    cut_minority(facade, 0)
    before = fake.now
    facade.attach_document("s2", "html", "two", "")
    # Failover had to wait out r0's lease before the majority granted.
    assert fake.now - before >= LEASE / 2
    assert facade._lease.index in (1, 2) and facade._lease.fence >= 2
    assert facade.aborted_writes == 1
    assert facade.runtimes[0].epoch == 1  # minority missed the commit
    assert facade.runtimes[1].epoch == facade.runtimes[2].epoch == 2


def test_aborted_write_consumes_no_epoch_and_discards_journals():
    facade, _ = build()
    facade.attach_document("s1", "html", "one", "")
    lease = facade._lease
    cut_minority(facade, 1, 2)  # the primary r0 is now the minority
    with pytest.raises(QuorumLost):
        facade.write_as(lease, "attach_document", "s2", "html", "two", "")
    assert facade.epoch == 1
    assert facade.aborted_writes == 1
    for runtime in facade.runtimes:
        assert runtime.epoch == 1
        assert len(runtime.journal) == 1  # the abort left no trace


def test_no_majority_anywhere_raises_election_lost():
    facade, fake = build(replicas=5)
    facade.attach_document("s1", "html", "one", "")
    # Split 2/3 and kill one of the majority side: no candidate can
    # reach 3 grants, so even waiting out the lease cannot help.
    cut_minority(facade, 0, 1)
    facade.mark_dead(2)
    fake.now += LEASE + 1
    with pytest.raises(ElectionLost):
        facade.attach_document("s2", "html", "two", "")
    assert facade.epoch == 1


# ---------------------------------------------------------------- fencing --


def test_deposed_primary_never_commits_after_new_lease():
    """The split-brain core: an old primary that still *believes* its
    lease is valid (clock skew, partition) is fenced by the majority's
    newer promises and commits nothing."""
    facade, fake = build(replicas=5)
    facade.attach_document("s1", "html", "one", "")
    old = facade._lease
    cut_minority(facade, 0, 1)
    facade.attach_document("s2", "html", "two", "")  # fails over to r2+
    assert facade._lease.fence > old.fence
    # The deposed r0, on its own skewed clock, still holds fence 1.
    skewed = PrimaryLease(index=old.index, fence=old.fence,
                          expires_at=fake.now + LEASE, grants=old.grants)
    epochs = [r.epoch for r in facade.runtimes]
    with pytest.raises(FencedOut):
        facade.write_as(skewed, "attach_document", "evil", "h", "x", "")
    assert [r.epoch for r in facade.runtimes] == epochs
    assert facade.fenced_writes == 1
    for runtime in facade.runtimes:
        assert not runtime.codatabase.documents_of("evil")


def test_expired_lease_is_refused_before_any_offer():
    facade, fake = build()
    facade.attach_document("s1", "html", "one", "")
    lease = facade._lease
    fake.now += LEASE + 1
    with pytest.raises(LeaseExpired):
        facade.write_as(lease, "attach_document", "s2", "html", "two", "")
    assert facade.epoch == 1


def test_quorum_errors_are_comm_failures():
    # The resilience layer routes on CommFailure; quorum losses must
    # look like any other transport outage to it.
    from repro.errors import CommFailure
    assert issubclass(QuorumError, CommFailure)
    assert issubclass(QuorumLost, QuorumError)
    assert issubclass(FencedOut, QuorumError)


# ----------------------------------------------------------- anti-entropy --


def test_reconcile_replays_minority_up_to_leader():
    facade, _ = build()
    facade.attach_document("s1", "html", "one", "")
    cut_minority(facade, 0)
    facade.attach_document("s2", "html", "two", "")
    facade.attach_document("s3", "html", "three", "")
    facade._link = None  # partition heals
    healed = facade.reconcile()
    assert healed == 1
    assert {r.epoch for r in facade.runtimes} == {3}
    for runtime in facade.runtimes:
        for source in ("s1", "s2", "s3"):
            assert runtime.codatabase.documents_of(source)


def test_promised_fence_survives_restart_via_journal(tmp_path):
    def factory(owner, index):
        return ReplicaJournal(str(tmp_path / f"r{index}" / "journal.wal"))

    facade, _ = build(journal_factory=factory)
    facade.attach_document("s1", "html", "one", "")
    fence = facade._lease.fence
    for runtime in facade.runtimes:
        runtime.journal.close()
    # A restarted process must not elect below a fence it committed
    # under: the journaled high-water seeds the volatile promise.
    reborn, _ = build(journal_factory=factory)
    assert all(r.lease.promised_fence == fence for r in reborn.runtimes)
    lease = reborn.elect()
    assert lease.fence == fence + 1


# ------------------------------------------------------------------ status --


def test_lease_status_and_replica_status_surface_quorum_state():
    facade, _ = build()
    facade.attach_document("s1", "html", "one", "")
    status = facade.lease_status()
    assert status["quorum"] is True
    assert status["majority"] == 2
    assert status["holder"] == "r0" and status["fence"] == 1
    full = facade.status()
    assert full["lease"]["fence"] == 1
    assert all(r["promised_fence"] == 1 for r in full["replicas"])


def test_non_quorum_facade_reports_quorum_off():
    facade = ReplicatedCoDatabase("Alpha", replicas=2)
    assert facade.lease_status()["quorum"] is False
    assert "lease" not in facade.status()
