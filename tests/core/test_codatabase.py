"""Co-database tests: the OO metadata repository of §2.2."""

import pytest

from repro.core.codatabase import CoDatabase, CoDatabaseServant
from repro.core.coalition import Coalition
from repro.core.model import SourceDescription
from repro.core.service_link import EndpointKind, ServiceLink
from repro.errors import UnknownCoalition, UnknownDatabase


def description(name, info="Medical", **kwargs):
    return SourceDescription(name=name, information_type=info,
                             location=f"{name}.net", **kwargs)


@pytest.fixture()
def codb():
    codb = CoDatabase("RBH")
    codb.advertise(description("RBH", "Research and Medical"))
    codb.register_coalition(Coalition("Research", "Medical Research"))
    codb.register_coalition(Coalition("Medical", "Medical"))
    codb.record_membership("Research")
    codb.record_membership("Medical")
    codb.add_member("Research", description("RBH", "Research and Medical"))
    codb.add_member("Research", description("QUT", "Medical Research"))
    codb.add_member("Medical", description("RBH", "Research and Medical"))
    codb.add_member("Medical", description("PCH", "Medical"))
    return codb


class TestStructure:
    def test_coalitions_are_classes(self, codb):
        schema = codb.object_database.schema
        assert schema.has_class("Research")
        assert schema.is_subclass("Research", "InformationSource")

    def test_members_are_instances(self, codb):
        instances = codb.instances_of("Research")
        assert {d.name for d in instances} == {"RBH", "QUT"}

    def test_advertise_owner_only(self, codb):
        with pytest.raises(UnknownDatabase):
            codb.advertise(description("Other"))

    def test_coalition_hierarchy(self, codb):
        codb.register_coalition(Coalition("Cancer Research",
                                          "cancer research",
                                          parent="Research"))
        assert codb.subclasses_of("Research") == ["Cancer Research"]
        codb.add_member("Cancer Research", description("QCF", "cancer"))
        # instances_of includes subclass members
        assert "QCF" in {d.name for d in codb.instances_of("Research")}

    def test_duplicate_member_ignored(self, codb):
        codb.add_member("Research", description("QUT", "Medical Research"))
        assert len(codb.instances_of("Research")) == 2

    def test_unknown_coalition_rejected(self, codb):
        with pytest.raises(UnknownCoalition):
            codb.instances_of("Ghost")
        with pytest.raises(UnknownCoalition):
            codb.add_member("Document", description("X"))

    def test_memberships_tracked(self, codb):
        assert codb.memberships == ["Research", "Medical"]
        codb.drop_membership("Medical")
        assert codb.memberships == ["Research"]


class TestQueries:
    def test_find_coalitions_scores_and_sorts(self, codb):
        """Figure 4: 'both coalitions Medical and Research provide
        information about Medical and Research' — Medical qualifies
        through its member RBH's advertised type."""
        matches = codb.find_coalitions("Medical Research")
        by_name = {m["name"]: m["score"] for m in matches}
        assert by_name["Research"] == 1.0
        assert by_name["Medical"] == 1.0  # via member RBH's description
        scores = [m["score"] for m in matches]
        assert scores == sorted(scores, reverse=True)

    def test_find_coalitions_threshold(self, codb):
        assert codb.find_coalitions("Superannuation") == []

    def test_find_returns_members(self, codb):
        matches = codb.find_coalitions("Medical Research")
        research = next(m for m in matches if m["name"] == "Research")
        assert set(research["members"]) == {"RBH", "QUT"}

    def test_describe_instance_local(self, codb):
        assert codb.describe_instance("RBH").information_type == \
            "Research and Medical"

    def test_describe_instance_member(self, codb):
        assert codb.describe_instance("QUT").location == "QUT.net"

    def test_describe_missing(self, codb):
        with pytest.raises(UnknownDatabase):
            codb.describe_instance("Nobody")

    def test_neighbor_databases_excludes_owner(self, codb):
        assert set(codb.neighbor_databases()) == {"QUT", "PCH"}

    def test_documents(self, codb):
        codb.attach_document("RBH", "html", "<html/>", "http://rbh")
        codb.attach_document("RBH", "text", "plain words")
        documents = codb.documents_of("RBH")
        assert {d["format"] for d in documents} == {"html", "text"}
        assert codb.documents_of("QUT") == []

    def test_query_counter_increments(self, codb):
        before = codb.queries_answered
        codb.find_coalitions("x")
        codb.neighbor_databases()
        assert codb.queries_answered == before + 3  # find calls known_coalitions


class TestServiceLinks:
    def make_link(self, contact=""):
        return ServiceLink(EndpointKind.COALITION, "Medical",
                           EndpointKind.COALITION, "Medical Insurance",
                           information_type="Medical Insurance",
                           contact=contact)

    def test_coalition_link_classified(self, codb):
        codb.add_service_link(self.make_link())
        links = codb.service_links()
        assert len(links) == 1
        extent = codb.object_database.extent("CoalitionServiceLink",
                                             include_subclasses=False)
        assert len(extent) == 1

    def test_database_link_classified(self, codb):
        link = ServiceLink(EndpointKind.DATABASE, "RBH",
                           EndpointKind.DATABASE, "Medicare")
        codb.add_service_link(link)
        extent = codb.object_database.extent("DatabaseServiceLink",
                                             include_subclasses=False)
        assert len(extent) == 1

    def test_duplicate_link_ignored(self, codb):
        codb.add_service_link(self.make_link())
        codb.add_service_link(self.make_link())
        assert len(codb.service_links()) == 1

    def test_remove_link(self, codb):
        codb.add_service_link(self.make_link())
        codb.remove_service_link(self.make_link())
        assert codb.service_links() == []

    def test_links_of_filters(self, codb):
        codb.add_service_link(self.make_link())
        assert codb.links_of(EndpointKind.COALITION, "Medical")
        assert not codb.links_of(EndpointKind.COALITION, "Research")

    def test_contact_preserved(self, codb):
        codb.add_service_link(self.make_link(contact="Medibank"))
        assert codb.service_links()[0].contact == "Medibank"


class TestServant:
    def test_servant_wire_types(self, codb):
        servant = CoDatabaseServant(codb)
        assert servant.owner() == "RBH"
        assert servant.memberships() == ["Research", "Medical"]
        matches = servant.find_coalitions("Medical Research")
        assert isinstance(matches[0], dict)
        instances = servant.instances_of("Research")
        assert all(isinstance(d, dict) for d in instances)
        described = servant.describe_instance("QUT")
        assert described["name"] == "QUT"
        codb.add_service_link(ServiceLink(
            EndpointKind.DATABASE, "RBH", EndpointKind.DATABASE, "X"))
        assert isinstance(servant.service_links()[0], dict)


class TestTopicProximity:
    """§2.1: coalitions related by topic proximity surface as leads."""

    def test_related_topic_scores_at_threshold(self):
        from repro.core.model import Ontology
        ontology = Ontology()
        ontology.relate("Superannuation", "Medical Workers Union")
        codb = CoDatabase("X", ontology=ontology)
        codb.register_coalition(Coalition("Medical Workers Union",
                                          "Medical Workers Union"))
        matches = codb.find_coalitions("Superannuation")
        assert [m["name"] for m in matches] == ["Medical Workers Union"]
        assert matches[0]["score"] == 0.5

    def test_unrelated_topic_still_misses(self):
        from repro.core.model import Ontology
        codb = CoDatabase("X", ontology=Ontology())
        codb.register_coalition(Coalition("Medical", "Medical"))
        assert codb.find_coalitions("astrophysics") == []

    def test_direct_match_outranks_proximity(self):
        from repro.core.model import Ontology
        ontology = Ontology()
        ontology.relate("insurance", "Medical")
        codb = CoDatabase("X", ontology=ontology)
        codb.register_coalition(Coalition("Medical", "Medical"))
        codb.register_coalition(Coalition("Insurance", "insurance"))
        matches = codb.find_coalitions("insurance")
        assert matches[0]["name"] == "Insurance"
        assert matches[0]["score"] == 1.0
