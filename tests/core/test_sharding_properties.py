"""Conformance suite for consistent-hash registry sharding.

Two families of invariants:

* **Ring** — every key has exactly one live owner, join/leave remap
  only the arcs that changed hands (minimal remapping), and placement
  is a pure function of the name (identical across processes and
  ``PYTHONHASHSEED`` values).
* **Coordinator** — for any shard count, running the same maintenance
  script through a :class:`ShardedRegistryClient` leaves the federation
  observably identical to the singleton :class:`Registry`: the same
  sorted name sets, the same summary counters, the same per-source
  epochs, the same counted co-database writes, and byte-identical
  co-database *contents* — sharding relocates authority, never data.
"""

import json
import os
import string
import subprocess
import sys

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.core.model import SourceDescription
from repro.core.registry import Registry
from repro.core.service_link import EndpointKind, ServiceLink
from repro.core.sharding import (DEFAULT_VNODES, HashRing,
                                 ShardedRegistryClient)
from repro.errors import WebFinditError

NAME_ALPHABET = string.ascii_letters + string.digits + " -_."

names = st.text(alphabet=NAME_ALPHABET, min_size=1, max_size=24)
key_sets = st.sets(names, min_size=1, max_size=80)
node_counts = st.integers(min_value=1, max_value=8)

TOPICS = ["cardiology", "oncology", "insurance", "research",
          "pathology", "radiology"]


# ---------------------------------------------------------------------------
# Ring properties
# ---------------------------------------------------------------------------


@given(key_sets, node_counts)
@settings(max_examples=60, deadline=None)
def test_every_key_has_exactly_one_owner(keys, node_count):
    ring = HashRing(range(node_count), vnodes=16)
    partition = ring.ownership(keys)
    assert set(partition) == set(range(node_count))
    owned = [key for bucket in partition.values() for key in bucket]
    assert sorted(owned) == sorted(keys)
    for key in keys:
        owner = ring.owner(key)
        assert key in partition[owner]
        assert sum(key in bucket for bucket in partition.values()) == 1


@given(key_sets, st.integers(min_value=2, max_value=8), st.data())
@settings(max_examples=60, deadline=None)
def test_leave_remaps_only_the_leavers_keys(keys, node_count, data):
    """Removing a shard moves exactly the keys it owned; every other
    key keeps its owner (the minimal-remapping property)."""
    ring = HashRing(range(node_count), vnodes=16)
    before = {key: ring.owner(key) for key in keys}
    doomed = data.draw(st.sampled_from(range(node_count)))
    ring.remove_node(doomed)
    for key in keys:
        after = ring.owner(key)
        if before[key] == doomed:
            assert after != doomed
        else:
            assert after == before[key]


@given(key_sets, node_counts)
@settings(max_examples=60, deadline=None)
def test_join_steals_keys_only_for_itself(keys, node_count):
    """A joining shard only acquires keys; it never shuffles keys
    between the incumbents."""
    ring = HashRing(range(node_count), vnodes=16)
    before = {key: ring.owner(key) for key in keys}
    ring.add_node(node_count)
    for key in keys:
        after = ring.owner(key)
        assert after == before[key] or after == node_count


@given(key_sets, node_counts)
@settings(max_examples=30, deadline=None)
def test_join_then_leave_restores_placement(keys, node_count):
    ring = HashRing(range(node_count), vnodes=16)
    before = {key: ring.owner(key) for key in keys}
    ring.add_node(node_count)
    ring.remove_node(node_count)
    assert {key: ring.owner(key) for key in keys} == before


def test_ring_rejects_bad_configuration():
    with pytest.raises(WebFinditError):
        HashRing(vnodes=0)
    ring = HashRing([0, 1])
    with pytest.raises(WebFinditError):
        ring.add_node(0)
    with pytest.raises(WebFinditError):
        ring.add_node(2, weight=0)
    with pytest.raises(WebFinditError):
        ring.remove_node(7)
    with pytest.raises(WebFinditError):
        HashRing([]).owner("anything")


def test_weight_scales_vnode_count():
    ring = HashRing([0], vnodes=8)
    ring.add_node(1, weight=3)
    points = ring.describe()["points"]
    assert points["0"] == 8
    assert points["1"] == 24


_CROSS_PROCESS_SCRIPT = """
import json, sys
from repro.core.sharding import HashRing
keys = json.loads(sys.stdin.read())
ring = HashRing(range(5), vnodes=32)
print(json.dumps({key: ring.owner(key) for key in keys}, sort_keys=True))
"""


def test_placement_is_identical_across_processes_and_hash_seeds():
    """Ring placement never depends on interpreter hash randomisation:
    fresh processes with adversarially different ``PYTHONHASHSEED``
    values compute the same owner for every key."""
    import repro
    source_root = os.path.dirname(os.path.dirname(
        os.path.abspath(repro.__file__)))
    keys = [f"db-{index}" for index in range(40)] \
        + ["Royal Brisbane Hospital", "QUT Research", "Medibank"]
    outputs = []
    for seed in ("0", "1", "424242"):
        result = subprocess.run(
            [sys.executable, "-c", _CROSS_PROCESS_SCRIPT],
            input=json.dumps(keys), capture_output=True, text=True,
            env={"PYTHONHASHSEED": seed, "PYTHONPATH": source_root},
            check=True)
        outputs.append(result.stdout.strip())
    assert outputs[0] == outputs[1] == outputs[2]
    # ...and the in-process ring agrees with the subprocesses.
    ring = HashRing(range(5), vnodes=32)
    assert json.loads(outputs[0]) == {key: ring.owner(key) for key in keys}


@given(key_sets)
@settings(max_examples=20, deadline=None)
def test_two_rings_with_same_nodes_agree(keys):
    first = HashRing(range(4))
    second = HashRing([3, 1, 0, 2])  # join order must not matter
    assert {k: first.owner(k) for k in keys} \
        == {k: second.owner(k) for k in keys}


def test_vnodes_spread_load_within_reason():
    """With vnode weighting, random names spread across shards instead
    of piling onto one arc (loose 4x bound: this guards pathological
    imbalance, not perfect uniformity)."""
    ring = HashRing(range(4), vnodes=DEFAULT_VNODES)
    keys = [f"source-{index}" for index in range(2000)]
    partition = ring.ownership(keys)
    sizes = sorted(len(bucket) for bucket in partition.values())
    assert sizes[0] > 0
    assert sizes[-1] <= 4 * sizes[0]


# ---------------------------------------------------------------------------
# Coordinator conformance: sharded == singleton for any partition
# ---------------------------------------------------------------------------


@st.composite
def maintenance_scripts(draw):
    """A random but deterministic federation-maintenance session:
    coalitions (some specialized), sources, joins, service links, then
    a few destructive operations."""
    coalition_count = draw(st.integers(min_value=1, max_value=4))
    specializations = draw(st.lists(
        st.integers(0, coalition_count - 1), max_size=2))
    source_count = draw(st.integers(min_value=1, max_value=8))
    memberships = draw(st.lists(
        st.tuples(st.integers(0, source_count - 1),
                  st.integers(0, coalition_count - 1)),
        max_size=12))
    links = draw(st.lists(
        st.tuples(st.integers(0, coalition_count - 1),
                  st.integers(0, coalition_count - 1)),
        max_size=3))
    removals = draw(st.lists(st.integers(0, source_count - 1), max_size=2))
    readvertise = draw(st.lists(st.integers(0, source_count - 1),
                                max_size=2))
    return (coalition_count, specializations, source_count, memberships,
            links, removals, readvertise)


def run_script(target, script):
    """Apply one maintenance script to a registry-like *target*."""
    (coalition_count, specializations, source_count, memberships,
     links, removals, readvertise) = script
    coalitions = []
    for index in range(coalition_count):
        name = f"C{index} {TOPICS[index % len(TOPICS)]}"
        target.create_coalition(name, TOPICS[index % len(TOPICS)])
        coalitions.append(name)
    for order, parent_index in enumerate(specializations):
        name = f"S{order} {TOPICS[parent_index % len(TOPICS)]}"
        target.create_coalition(
            name, TOPICS[parent_index % len(TOPICS)],
            parent=coalitions[parent_index])
        coalitions.append(name)
    sources = []
    for index in range(source_count):
        name = f"db{index}"
        target.add_source(SourceDescription(
            name=name, information_type=TOPICS[index % len(TOPICS)],
            location=f"{name}.example.net"))
        sources.append(name)
    joined = set()
    for source_index, coalition_index in memberships:
        pair = (sources[source_index], coalitions[coalition_index])
        if pair in joined:
            continue
        joined.add(pair)
        target.join(*pair)
    for a, b in links:
        link = ServiceLink(EndpointKind.COALITION, coalitions[a],
                           EndpointKind.COALITION, coalitions[b],
                           information_type=TOPICS[b % len(TOPICS)])
        try:
            target.add_service_link(link)
        except WebFinditError:
            pass  # duplicate draw: must fail identically on both sides
    for index in readvertise:
        description = target.source(sources[index])
        description.doc = f"refreshed {index}"
        target.advertise(description)
    for index in sorted(set(removals), reverse=True):
        target.remove_source(sources[index])
        sources.pop(index)
    return coalitions, sources


def codb_fingerprint(registry_like, name):
    """Everything observable about one co-database, in wire shape."""
    codb = registry_like.codatabase(name)
    return {
        "owner": codb.owner_name,
        "epoch": codb.epoch,
        "applied": codb.applied,
        "memberships": list(codb.memberships),
        "coalitions": [(c.name, c.information_type, c.parent,
                        list(c.members))
                       for c in codb.known_coalitions()],
        "links": [link.to_wire() for link in codb.service_links()],
        "neighbors": codb.neighbor_databases(),
    }


@given(maintenance_scripts(), st.integers(min_value=1, max_value=5))
@settings(max_examples=50, deadline=None)
def test_sharded_federation_equals_singleton(script, shard_count):
    """The tentpole invariant: for any partition of the name space, the
    sharded coordinator and the singleton registry are observably the
    same federation."""
    singleton = Registry()
    sharded = ShardedRegistryClient.local(shard_count, vnodes=8)
    run_script(singleton, script)
    coalitions, sources = run_script(sharded, script)

    assert sharded.source_names() == sorted(singleton.source_names())
    assert sharded.coalition_names() == sorted(singleton.coalition_names())
    assert sharded.summary() == singleton.summary()
    assert sharded.epochs() == singleton.epochs()
    assert sharded.update_operations == singleton.update_operations
    assert [link.to_wire() for link in sharded.service_links()] \
        == [link.to_wire() for link in singleton.service_links()]
    for name in sources:
        assert codb_fingerprint(sharded, name) \
            == codb_fingerprint(singleton, name)
    for name in coalitions:
        if singleton.has_coalition(name):
            ours, theirs = sharded.coalition(name), \
                singleton.coalition(name)
            assert (ours.name, ours.information_type, ours.parent,
                    list(ours.members)) \
                == (theirs.name, theirs.information_type, theirs.parent,
                    list(theirs.members))


@given(maintenance_scripts(), st.integers(min_value=2, max_value=4))
@settings(max_examples=25, deadline=None)
def test_sharded_errors_match_singleton(script, shard_count):
    """Invalid operations fail identically (same exception type and
    message) whether the name space is sharded or not."""
    singleton = Registry()
    sharded = ShardedRegistryClient.local(shard_count, vnodes=8)
    run_script(singleton, script)
    run_script(sharded, script)
    probes = [
        lambda t: t.source("no such database"),
        lambda t: t.coalition("no such coalition"),
        lambda t: t.create_coalition(t.coalition_names()[0]
                                     if t.coalition_names() else "C0 x",
                                     "dup") if t.coalition_names() else None,
        lambda t: t.join("no such database", "no such coalition"),
        lambda t: t.remove_source("no such database"),
    ]
    for probe in probes:
        outcomes = []
        for target in (singleton, sharded):
            try:
                probe(target)
                outcomes.append(None)
            except Exception as exc:  # noqa: BLE001 — compared below
                outcomes.append((type(exc).__name__, str(exc)))
        assert outcomes[0] == outcomes[1]


@given(maintenance_scripts())
@settings(max_examples=15, deadline=None)
def test_remote_giop_shards_equal_local_shards(script):
    """Exporting the shards over real ORB endpoints changes nothing:
    the GIOP-backed coordinator reports the same federation as the
    in-process one and the singleton."""
    from repro.core.sharding import (REGISTRY_SHARD_INTERFACE,
                                     RegistryShardServant, RemoteShard)
    from repro.orb.orb import Orb
    from repro.orb.transport import InMemoryNetwork

    shard_count = 3
    singleton = Registry()
    run_script(singleton, script)

    backing = [Registry() for __ in range(shard_count)]
    transport = InMemoryNetwork()
    handles = []
    for index, registry in enumerate(backing):
        orb = Orb(name=f"shard{index}", transport=transport,
                  host=f"shard{index}.test", product="WebFINDIT")
        ior = orb.activate(RegistryShardServant(registry),
                           REGISTRY_SHARD_INTERFACE,
                           object_name=f"shard{index}")
        handles.append(RemoteShard(orb.proxy(ior,
                                             REGISTRY_SHARD_INTERFACE)))
    remote = ShardedRegistryClient(handles,
                                   ring=HashRing(range(shard_count),
                                                 vnodes=8))
    run_script(remote, script)

    assert remote.source_names() == sorted(singleton.source_names())
    assert remote.coalition_names() == sorted(singleton.coalition_names())
    assert remote.summary() == singleton.summary()
    assert remote.epochs() == singleton.epochs()
    assert remote.update_operations == singleton.update_operations
    # Co-database contents live in the shard processes; compare their
    # fingerprints through the backing registries.
    local = ShardedRegistryClient(backing,
                                  ring=HashRing(range(shard_count),
                                                vnodes=8))
    for name in singleton.source_names():
        assert codb_fingerprint(local, name) \
            == codb_fingerprint(singleton, name)


def test_shard_of_agrees_with_ring():
    sharded = ShardedRegistryClient.local(4)
    for name in ("Alpha", "Beta", "Royal Brisbane Hospital"):
        assert sharded.shard_of(name) == sharded.ring.owner(name)


def test_shard_statuses_cover_every_shard():
    sharded = ShardedRegistryClient.local(3)
    sharded.add_source(SourceDescription(name="Solo",
                                         information_type="cardiology"))
    statuses = sharded.shard_statuses()
    assert [status["shard"] for status in statuses] == [0, 1, 2]
    assert sum(status["sources"] for status in statuses) == 1
