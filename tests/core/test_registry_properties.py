"""Property-based tests: the locality rule survives arbitrary
join/leave/link sequences."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import SourceDescription
from repro.core.registry import Registry
from repro.core.service_link import EndpointKind, ServiceLink
from repro.errors import MembershipError, WebFinditError

DATABASES = [f"db{i}" for i in range(5)]
COALITIONS = [f"C{i}" for i in range(3)]

operations = st.lists(
    st.one_of(
        st.tuples(st.just("join"), st.sampled_from(DATABASES),
                  st.sampled_from(COALITIONS)),
        st.tuples(st.just("leave"), st.sampled_from(DATABASES),
                  st.sampled_from(COALITIONS)),
        st.tuples(st.just("link"), st.sampled_from(DATABASES),
                  st.sampled_from(COALITIONS)),
    ),
    max_size=25)


def apply_operations(ops):
    registry = Registry()
    for name in DATABASES:
        registry.add_source(SourceDescription(name=name,
                                              information_type="topic"))
    for name in COALITIONS:
        registry.create_coalition(name, f"topic {name}")
    for op, database, coalition in ops:
        try:
            if op == "join":
                registry.join(database, coalition)
            elif op == "leave":
                registry.leave(database, coalition)
            else:
                registry.add_service_link(ServiceLink(
                    EndpointKind.DATABASE, database,
                    EndpointKind.COALITION, coalition))
        except (MembershipError, WebFinditError):
            pass  # invalid transitions are rejected, state stays intact
    return registry


@given(operations)
@settings(max_examples=50, deadline=None)
def test_membership_agrees_everywhere(ops):
    """After any operation sequence, the coalition's member list, each
    member's recorded memberships, and each member's co-database
    instances all agree."""
    registry = apply_operations(ops)
    for coalition_name in COALITIONS:
        members = registry.coalition(coalition_name).members
        for member in members:
            codatabase = registry.codatabase(member)
            assert coalition_name in codatabase.memberships
            stored = {d.name for d in codatabase.instances_of(coalition_name)}
            assert stored == set(members)
    # and non-members know nothing about the coalition's membership
    for database in DATABASES:
        codatabase = registry.codatabase(database)
        for coalition_name in codatabase.memberships:
            assert registry.coalition(coalition_name).has_member(database)


@given(operations)
@settings(max_examples=50, deadline=None)
def test_links_known_exactly_by_audience(ops):
    registry = apply_operations(ops)
    for link in registry.service_links():
        audience = set(registry.coalition(link.to_name).members)
        audience.add(link.from_name)
        for database in DATABASES:
            labels = {known.label for known in
                      registry.codatabase(database).service_links()}
            if database in audience:
                assert link.label in labels
            # (databases outside the audience may have learned the link
            # before leaving the coalition; staleness is allowed, but
            # audience members must always know it.)


@given(operations)
@settings(max_examples=40, deadline=None)
def test_summary_is_consistent(ops):
    registry = apply_operations(ops)
    summary = registry.summary()
    assert summary["sources"] == len(DATABASES)
    assert summary["coalitions"] == len(COALITIONS)
    assert summary["memberships"] == sum(
        len(registry.coalition(c).members) for c in COALITIONS)


@given(operations)
@settings(max_examples=30, deadline=None)
def test_topology_export_round_trips_after_any_sequence(ops):
    from repro.core.snapshot import export_topology, import_topology
    registry = apply_operations(ops)
    restored = import_topology(export_topology(registry))
    assert restored.summary() == registry.summary()
    for coalition_name in COALITIONS:
        assert restored.coalition(coalition_name).members == \
            registry.coalition(coalition_name).members
