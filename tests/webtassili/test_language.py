"""WebTassili lexer and parser tests."""

import pytest

from repro.errors import WebTassiliSyntaxError
from repro.webtassili import ast, parse, tokenize
from repro.webtassili.lexer import TokenType


class TestLexer:
    def test_words_and_strings(self):
        tokens = tokenize("Find Coalitions With Information 'Medical'")
        assert tokens[0].type is TokenType.WORD
        assert tokens[-2].type is TokenType.STRING
        assert tokens[-2].value == "Medical"

    def test_escaped_quote_in_string(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].value == "it's"

    def test_numbers(self):
        tokens = tokenize("With (42, 3.5, -7)")
        values = [t.value for t in tokens if t.type is TokenType.NUMBER]
        assert values == [42, 3.5, -7]

    def test_unterminated_string(self):
        with pytest.raises(WebTassiliSyntaxError):
            tokenize("'open")

    def test_unexpected_character(self):
        with pytest.raises(WebTassiliSyntaxError):
            tokenize("Find @")

    def test_hyphenated_words(self):
        tokens = tokenize("Centre-Link")
        assert tokens[0].value == "Centre-Link"


class TestExploration:
    def test_find_coalitions_bare_words(self):
        statement = parse("Find Coalitions With Information Medical Research;")
        assert isinstance(statement, ast.FindCoalitions)
        assert statement.information == "Medical Research"

    def test_display_coalitions_is_find(self):
        statement = parse("Display Coalitions With Information 'X'")
        assert isinstance(statement, ast.FindCoalitions)

    def test_connect_to_coalition(self):
        statement = parse("Connect To Coalition Research")
        assert statement.target_kind == "coalition"
        assert statement.name == "Research"

    def test_connect_to_database_multiword(self):
        statement = parse("Connect To Database Royal Brisbane Hospital")
        assert statement.name == "Royal Brisbane Hospital"

    def test_display_subclasses(self):
        statement = parse("Display SubClasses of Class Research")
        assert isinstance(statement, ast.DisplaySubclasses)

    def test_display_instances(self):
        statement = parse("Display Instances of Class Medical Insurance")
        assert statement.class_name == "Medical Insurance"

    def test_display_document_with_class(self):
        statement = parse("Display Document of Instance Royal Brisbane "
                          "Hospital Of Class Research;")
        assert statement.instance_name == "Royal Brisbane Hospital"
        assert statement.class_name == "Research"

    def test_documentation_synonym(self):
        statement = parse("Display Documentation of Instance X")
        assert isinstance(statement, ast.DisplayDocument)
        assert statement.class_name is None

    def test_display_access_information(self):
        statement = parse("Display Access Information of Instance "
                          "Royal Brisbane Hospital")
        assert isinstance(statement, ast.DisplayAccessInfo)

    def test_display_interface(self):
        statement = parse("Display Interface of Instance MBF")
        assert isinstance(statement, ast.DisplayInterface)

    def test_display_service_links(self):
        statement = parse("Display Service Links of Coalition Medical")
        assert statement.target_kind == "coalition"

    def test_quoted_names_supported(self):
        statement = parse("Connect To Coalition 'Medical Insurance'")
        assert statement.name == "Medical Insurance"


class TestDataLevel:
    def test_native_query(self):
        statement = parse(
            "Query Royal Brisbane Hospital Native "
            "'select * from medical_students'")
        assert isinstance(statement, ast.NativeQuery)
        assert statement.database_name == "Royal Brisbane Hospital"
        assert "medical_students" in statement.text

    def test_invoke_with_arguments(self):
        statement = parse(
            "Invoke Funding Of Type ResearchProjects On Royal Brisbane "
            "Hospital With ('AIDS and drugs', 42, TRUE, NULL)")
        assert isinstance(statement, ast.InvokeFunction)
        assert statement.arguments == ["AIDS and drugs", 42, True, None]

    def test_invoke_without_arguments(self):
        statement = parse("Invoke All Of Type T On DB")
        assert statement.arguments == []

    def test_invoke_empty_parens(self):
        statement = parse("Invoke All Of Type T On DB With ()")
        assert statement.arguments == []


class TestMaintenance:
    def test_create_coalition(self):
        statement = parse("Create Coalition Oncology With Information "
                          "'cancer care'")
        assert isinstance(statement, ast.CreateCoalition)
        assert statement.information == "cancer care"

    def test_dissolve(self):
        assert isinstance(parse("Dissolve Coalition X"),
                          ast.DissolveCoalition)

    def test_advertise_full_block(self):
        statement = parse(
            "Advertise Source Royal Brisbane Hospital "
            "Information 'Research and Medical' "
            "Documentation 'http://rbh' Location 'dba.icis.qut.edu.au' "
            "Wrapper 'WebTassiliOracle' "
            "Interface ResearchProjects, PatientHistory")
        assert statement.name == "Royal Brisbane Hospital"
        assert statement.interface == ["ResearchProjects", "PatientHistory"]
        assert statement.wrapper == "WebTassiliOracle"

    def test_join_and_leave(self):
        join = parse("Join Database Medibank To Coalition Medical Insurance")
        assert join.database_name == "Medibank"
        assert join.coalition_name == "Medical Insurance"
        leave = parse("Leave Database Medibank From Coalition "
                      "Medical Insurance")
        assert isinstance(leave, ast.LeaveCoalition)

    def test_create_service_link(self):
        statement = parse(
            "Create Service Link From Coalition Medical To Coalition "
            "Medical Insurance With Description 'minimal sharing'")
        assert statement.from_kind == "coalition"
        assert statement.to_name == "Medical Insurance"
        assert statement.description == "minimal sharing"

    def test_drop_service_link(self):
        statement = parse("Drop Service Link From Database Ambulance "
                          "To Coalition Medical")
        assert isinstance(statement, ast.DropServiceLink)


class TestErrors:
    def test_unknown_statement(self):
        with pytest.raises(WebTassiliSyntaxError):
            parse("Explode Everything")

    def test_unknown_display_target(self):
        with pytest.raises(WebTassiliSyntaxError):
            parse("Display Mysteries of Class X")

    def test_trailing_garbage(self):
        with pytest.raises(WebTassiliSyntaxError):
            parse("Connect To Coalition X ; extra")

    def test_missing_name(self):
        with pytest.raises(WebTassiliSyntaxError):
            parse("Connect To Coalition")

    def test_invoke_requires_parens(self):
        with pytest.raises(WebTassiliSyntaxError):
            parse("Invoke F Of Type T On DB With 'x'")


class TestFindSources:
    def test_find_sources(self):
        statement = parse("Find Sources With Information Medical Insurance")
        assert isinstance(statement, ast.FindSources)
        assert statement.information == "Medical Insurance"

    def test_find_databases_synonym(self):
        statement = parse("Find Databases With Information 'cancer'")
        assert isinstance(statement, ast.FindSources)

    def test_find_requires_target(self):
        with pytest.raises(WebTassiliSyntaxError):
            parse("Find Everything With Information x")


class TestStructureQualifier:
    def test_structure_list_parsed(self):
        statement = parse("Find Coalitions With Information X "
                          "Structure (ResearchProjects.Title, Funding)")
        assert statement.structure == ["ResearchProjects.Title", "Funding"]

    def test_structure_on_sources(self):
        statement = parse("Find Sources With Information X Structure (a)")
        assert isinstance(statement, ast.FindSources)
        assert statement.structure == ["a"]

    def test_structure_requires_parens(self):
        with pytest.raises(WebTassiliSyntaxError):
            parse("Find Sources With Information X Structure a")

    def test_no_structure_defaults_empty(self):
        assert parse("Find Coalitions With Information X").structure == []
