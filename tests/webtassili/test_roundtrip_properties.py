"""Property-based WebTassili tests: generated statements parse back to
their inputs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.webtassili import ast, parse

# Bare multi-word names: words that are not keywords and cannot be
# mistaken for literals.
word = st.text(alphabet="abcdefghijklmnopqrstuvwxyz",
               min_size=2, max_size=8).filter(
    lambda w: w.upper() not in
    {"OF", "TO", "ON", "FROM", "WITH", "AND", "FOR", "CLASS", "TYPE",
     "LINK", "LINKS", "NATIVE", "TRUE", "FALSE", "NULL", "SOURCE",
     "SOURCES", "ACCESS", "SERVICE", "INSTANCE", "INSTANCES", "DOCUMENT",
     "DOCUMENTATION", "INTERFACE", "STRUCTURE", "SUBCLASSES", "COALITION",
     "COALITIONS", "DATABASE", "DATABASES", "INFORMATION", "DESCRIPTION",
     "LOCATION", "WRAPPER", "FIND", "DISPLAY", "CONNECT", "QUERY",
     "INVOKE", "CREATE", "DISSOLVE", "ADVERTISE", "JOIN", "LEAVE", "DROP"})
name = st.lists(word, min_size=1, max_size=3).map(" ".join)
literal = st.one_of(
    st.integers(-1000, 1000),
    st.text(alphabet="abcdefghij XYZ'", max_size=12),
    st.booleans(), st.none())


def quote(value: str) -> str:
    return "'" + value.replace("'", "''") + "'"


def render_literal(value) -> str:
    if value is None:
        return "NULL"
    if value is True:
        return "TRUE"
    if value is False:
        return "FALSE"
    if isinstance(value, int):
        return str(value)
    return quote(value)


@given(topic=name)
@settings(max_examples=60, deadline=None)
def test_find_coalitions_roundtrip(topic):
    statement = parse(f"Find Coalitions With Information {quote(topic)}")
    assert isinstance(statement, ast.FindCoalitions)
    assert statement.information == topic


@given(instance=name, class_name=name)
@settings(max_examples=60, deadline=None)
def test_display_document_roundtrip(instance, class_name):
    statement = parse(f"Display Document of Instance {quote(instance)} "
                      f"Of Class {quote(class_name)}")
    assert statement.instance_name == instance
    assert statement.class_name == class_name


@given(instance=name)
@settings(max_examples=40, deadline=None)
def test_bare_multiword_names_roundtrip(instance):
    """Unquoted multi-word names survive when they contain no keywords."""
    statement = parse(f"Display Access Information of Instance {instance}")
    assert statement.instance_name == instance


@given(function=word, type_name=word, database=name,
       args=st.lists(literal, max_size=4))
@settings(max_examples=80, deadline=None)
def test_invoke_roundtrip(function, type_name, database, args):
    rendered = ", ".join(render_literal(a) for a in args)
    text = (f"Invoke {quote(function)} Of Type {quote(type_name)} "
            f"On {quote(database)}")
    if args:
        text += f" With ({rendered})"
    statement = parse(text)
    assert statement.function_name == function
    assert statement.type_name == type_name
    assert statement.database_name == database
    assert statement.arguments == args


@given(database=name, query=st.text(alphabet="abcdef *=<>'%_,().0123456789 ",
                                    min_size=1, max_size=60))
@settings(max_examples=60, deadline=None)
def test_native_query_preserves_text(database, query):
    statement = parse(f"Query {quote(database)} Native {quote(query)}")
    assert statement.text == query


@given(a=name, b=name, description=st.text(alphabet="abc def",
                                           min_size=1, max_size=20))
@settings(max_examples=60, deadline=None)
def test_service_link_roundtrip(a, b, description):
    statement = parse(
        f"Create Service Link From Coalition {quote(a)} "
        f"To Database {quote(b)} With Description {quote(description)}")
    assert statement.from_name == a
    assert statement.to_name == b
    assert statement.description == description
