"""Tests for the WebTassili shell (python -m repro)."""

import io

import pytest

from repro.apps.healthcare import topology as topo
from repro.cli import Shell, main


@pytest.fixture()
def shell(healthcare):
    output = io.StringIO()
    return Shell(healthcare, topo.QUT, output=output), output


class TestShell:
    def test_statement_executes(self, shell):
        repl, output = shell
        assert repl.handle("Find Coalitions With Information Medical Research")
        assert "Research" in output.getvalue()

    def test_error_reported_not_raised(self, shell):
        repl, output = shell
        assert repl.handle("Display Instances of Class Nonexistent")
        assert "error: UnknownCoalition" in output.getvalue()

    def test_syntax_error_reported(self, shell):
        repl, output = shell
        assert repl.handle("Destroy Everything")
        assert "error: WebTassiliSyntaxError" in output.getvalue()

    def test_blank_line_ignored(self, shell):
        repl, output = shell
        assert repl.handle("   ")
        assert output.getvalue() == ""

    def test_quit(self, shell):
        repl, __ = shell
        assert repl.handle("\\quit") is False
        assert repl.handle("\\q") is False

    def test_help(self, shell):
        repl, output = shell
        repl.handle("\\help")
        assert "Meta-commands" in output.getvalue()

    def test_tree(self, shell):
        repl, output = shell
        repl.handle("\\tree")
        assert "+ Research" in output.getvalue()

    def test_session_info(self, shell):
        repl, output = shell
        repl.handle("\\session")
        text = output.getvalue()
        assert f"home:      {topo.QUT}" in text

    def test_metrics(self, shell):
        repl, output = shell
        repl.handle("Find Coalitions With Information Medical")
        repl.handle("\\metrics")
        assert "GIOP messages:" in output.getvalue()

    def test_rehome(self, shell):
        repl, output = shell
        repl.handle("\\home Royal Brisbane Hospital")
        repl.handle("\\session")
        assert "home:      Royal Brisbane Hospital" in output.getvalue()

    def test_rehome_unknown(self, shell):
        repl, output = shell
        repl.handle("\\home Atlantis")
        assert "error" in output.getvalue()

    def test_unknown_meta(self, shell):
        repl, output = shell
        repl.handle("\\frobnicate")
        assert "unknown meta-command" in output.getvalue()

    def test_run_reads_until_quit(self, shell):
        repl, output = shell
        stream = io.StringIO("Find Coalitions With Information Medical\n"
                             "\\quit\n"
                             "Display Instances of Class Research\n")
        repl.run(stream, interactive=False)
        text = output.getvalue()
        assert "bye." in text
        assert "Instances of Class Research" not in text


class TestMain:
    def test_statement_mode(self):
        output = io.StringIO()
        code = main(["-s", "Find Coalitions With Information "
                           "Medical Research"], output=output)
        assert code == 0
        assert "Research" in output.getvalue()

    def test_custom_home(self):
        output = io.StringIO()
        main(["--home", "Royal Brisbane Hospital",
              "-s", "Display Instances of Class Medical"], output=output)
        assert "Prince Charles Hospital" in output.getvalue()

    def test_stream_mode(self):
        output = io.StringIO()
        stream = io.StringIO("\\session\n\\quit\n")
        code = main([], input_stream=stream, output=output)
        assert code == 0
        assert "bye." in output.getvalue()
