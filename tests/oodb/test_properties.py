"""Property-based tests for the object engine's lattice invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.oodb import Attribute, ObjectDatabase
from repro.oodb.schema import Schema


@st.composite
def lattices(draw):
    """Random single-inheritance forests encoded as parent indices."""
    count = draw(st.integers(min_value=1, max_value=12))
    parents = [draw(st.one_of(st.none(),
                              st.integers(min_value=0, max_value=i - 1)))
               if i else None for i in range(count)]
    return parents


@given(lattices())
@settings(max_examples=50, deadline=None)
def test_descendants_and_ancestors_are_inverse(parents):
    schema = Schema()
    names = [f"C{i}" for i in range(len(parents))]
    for index, parent in enumerate(parents):
        bases = [names[parent]] if parent is not None else []
        schema.define_class(names[index], bases=bases)
    for index, name in enumerate(names):
        for descendant in schema.descendants(name):
            assert name in schema.ancestors(descendant)
        for ancestor in schema.ancestors(name):
            assert name in schema.descendants(ancestor)


@given(lattices())
@settings(max_examples=50, deadline=None)
def test_subclass_relation_is_transitive_and_reflexive(parents):
    schema = Schema()
    names = [f"C{i}" for i in range(len(parents))]
    for index, parent in enumerate(parents):
        bases = [names[parent]] if parent is not None else []
        schema.define_class(names[index], bases=bases)
    for name in names:
        assert schema.is_subclass(name, name)
    for middle in names:
        for top in schema.ancestors(middle):
            for bottom in schema.descendants(middle):
                assert schema.is_subclass(bottom, top)


@given(st.lists(st.tuples(st.text(min_size=1, max_size=8),
                          st.integers(-1000, 1000)),
                max_size=25))
@settings(max_examples=40, deadline=None)
def test_extent_size_matches_creations(rows):
    db = ObjectDatabase("p")
    db.define_class("Thing", [Attribute("label", "string"),
                              Attribute("rank", "integer")])
    for label, rank in rows:
        db.create("Thing", label=label, rank=rank)
    assert len(db.extent("Thing")) == len(rows)
    # select partitions the extent
    positive = db.select("Thing", predicate=lambda o: o["rank"] > 0)
    rest = db.select("Thing", predicate=lambda o: o["rank"] <= 0)
    assert len(positive) + len(rest) == len(rows)


@given(st.lists(st.integers(0, 5), min_size=1, max_size=20))
@settings(max_examples=40, deadline=None)
def test_subclass_extents_partition_root_extent(choices):
    db = ObjectDatabase("p")
    db.define_class("Root", [Attribute("n", "integer")])
    subclass_names = [f"Sub{i}" for i in range(6)]
    for name in subclass_names:
        db.define_class(name, bases=["Root"])
    for choice in choices:
        db.create(subclass_names[choice], n=choice)
    total = sum(
        len(db.extent(name, include_subclasses=False))
        for name in subclass_names)
    assert total == len(choices)
    assert len(db.extent("Root")) == len(choices)
