"""Class lattice and attribute definition tests."""

import datetime

import pytest

from repro.errors import SchemaError
from repro.oodb.schema import Attribute, OClass, Schema


class TestAttribute:
    def test_unknown_kind_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("x", "blob")

    def test_target_only_for_object_kind(self):
        with pytest.raises(SchemaError):
            Attribute("x", "string", target="Y")

    def test_validate_string(self):
        attribute = Attribute("name", "string")
        assert attribute.validate("hi") == "hi"
        with pytest.raises(SchemaError):
            attribute.validate(7)

    def test_validate_integer_rejects_bool(self):
        attribute = Attribute("n", "integer")
        assert attribute.validate(7) == 7
        with pytest.raises(SchemaError):
            attribute.validate(True)

    def test_validate_real_accepts_int(self):
        assert Attribute("r", "real").validate(4) == 4

    def test_validate_date(self):
        attribute = Attribute("d", "date")
        today = datetime.date(1998, 1, 1)
        assert attribute.validate(today) == today
        with pytest.raises(SchemaError):
            attribute.validate("1998-01-01")

    def test_required_rejects_none(self):
        with pytest.raises(SchemaError):
            Attribute("x", "string", required=True).validate(None)

    def test_optional_accepts_none(self):
        assert Attribute("x", "string").validate(None) is None


class TestSchemaDefinition:
    def test_duplicate_class_rejected(self):
        schema = Schema()
        schema.define_class("A")
        with pytest.raises(SchemaError):
            schema.define_class("A")

    def test_unknown_base_rejected(self):
        with pytest.raises(SchemaError):
            Schema().define_class("B", bases=["Ghost"])

    def test_attribute_override_must_keep_kind(self):
        schema = Schema()
        schema.define_class("A", [Attribute("x", "integer")])
        with pytest.raises(SchemaError):
            schema.define_class("B", [Attribute("x", "string")], bases=["A"])

    def test_compatible_override_allowed(self):
        schema = Schema()
        schema.define_class("A", [Attribute("x", "integer")])
        schema.define_class("B", [Attribute("x", "integer", required=True)],
                            bases=["A"])
        assert schema.all_attributes("B")["x"].required

    def test_all_attributes_merges_inheritance(self):
        schema = Schema()
        schema.define_class("A", [Attribute("a", "string")])
        schema.define_class("B", [Attribute("b", "integer")], bases=["A"])
        assert set(schema.all_attributes("B")) == {"a", "b"}

    def test_multiple_inheritance(self):
        schema = Schema()
        schema.define_class("A", [Attribute("a", "string")])
        schema.define_class("B", [Attribute("b", "string")])
        schema.define_class("C", bases=["A", "B"])
        assert set(schema.all_attributes("C")) == {"a", "b"}

    def test_get_missing_class(self):
        with pytest.raises(SchemaError):
            Schema().get("Nope")


class TestLattice:
    @pytest.fixture()
    def schema(self):
        schema = Schema()
        schema.define_class("Root")
        schema.define_class("Mid1", bases=["Root"])
        schema.define_class("Mid2", bases=["Root"])
        schema.define_class("Leaf", bases=["Mid1", "Mid2"])
        return schema

    def test_subclasses_direct_only(self, schema):
        assert schema.subclasses("Root") == ["Mid1", "Mid2"]
        assert schema.subclasses("Mid1") == ["Leaf"]

    def test_descendants_transitive(self, schema):
        assert set(schema.descendants("Root")) == {"Mid1", "Mid2", "Leaf"}

    def test_descendants_no_duplicates_in_diamond(self, schema):
        assert schema.descendants("Root").count("Leaf") == 1

    def test_ancestors(self, schema):
        assert set(schema.ancestors("Leaf")) == {"Mid1", "Mid2", "Root"}
        assert schema.ancestors("Root") == []

    def test_is_subclass(self, schema):
        assert schema.is_subclass("Leaf", "Root")
        assert schema.is_subclass("Root", "Root")
        assert not schema.is_subclass("Root", "Leaf")

    def test_roots(self, schema):
        assert schema.roots() == ["Root"]

    def test_class_names_in_definition_order(self, schema):
        assert schema.class_names() == ["Root", "Mid1", "Mid2", "Leaf"]
