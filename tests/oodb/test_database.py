"""ObjectDatabase lifecycle, extents and selection."""

import pytest

from repro.errors import ObjectNotFound, SchemaError
from repro.oodb import Attribute, ObjectDatabase


@pytest.fixture()
def zoo():
    db = ObjectDatabase("zoo")
    db.define_class("Animal", [
        Attribute("name", "string", required=True),
        Attribute("weight", "real"),
    ])
    db.define_class("Bird", [Attribute("wingspan", "real")],
                    bases=["Animal"])
    db.define_class("Penguin", [], bases=["Bird"])
    return db


class TestLifecycle:
    def test_create_and_get(self, zoo):
        obj = zoo.create("Animal", name="Rex", weight=12.5)
        assert zoo.get(obj.oid)["name"] == "Rex"

    def test_unknown_attribute_rejected(self, zoo):
        with pytest.raises(SchemaError):
            zoo.create("Animal", name="x", legs=4)

    def test_required_attribute_enforced(self, zoo):
        with pytest.raises(SchemaError):
            zoo.create("Animal", weight=3.0)

    def test_missing_optional_fills_none(self, zoo):
        obj = zoo.create("Animal", name="Slim")
        assert obj["weight"] is None

    def test_abstract_class_cannot_instantiate(self):
        db = ObjectDatabase("a")
        db.define_class("Base", abstract=True)
        with pytest.raises(SchemaError):
            db.create("Base")

    def test_delete_removes_object(self, zoo):
        obj = zoo.create("Animal", name="Gone")
        zoo.delete(obj.oid)
        with pytest.raises(ObjectNotFound):
            zoo.get(obj.oid)
        with pytest.raises(ObjectNotFound):
            zoo.delete(obj.oid)

    def test_len_counts_objects(self, zoo):
        zoo.create("Animal", name="A")
        zoo.create("Bird", name="B")
        assert len(zoo) == 2

    def test_set_revalidates(self, zoo):
        obj = zoo.create("Animal", name="A")
        obj.set("weight", 9.0)
        assert obj["weight"] == 9.0
        with pytest.raises(SchemaError):
            obj.set("weight", "heavy")

    def test_oids_unique_and_ordered(self, zoo):
        a = zoo.create("Animal", name="A")
        b = zoo.create("Animal", name="B")
        assert a.oid != b.oid and a.oid < b.oid


class TestExtents:
    def test_extent_includes_subclasses_by_default(self, zoo):
        zoo.create("Animal", name="A")
        zoo.create("Bird", name="B", wingspan=1.0)
        zoo.create("Penguin", name="P")
        assert len(zoo.extent("Animal")) == 3
        assert len(zoo.extent("Bird")) == 2

    def test_extent_without_subclasses(self, zoo):
        zoo.create("Animal", name="A")
        zoo.create("Bird", name="B")
        assert len(zoo.extent("Animal", include_subclasses=False)) == 1

    def test_select_by_equality(self, zoo):
        zoo.create("Animal", name="A", weight=5.0)
        zoo.create("Animal", name="B", weight=5.0)
        zoo.create("Animal", name="C", weight=9.0)
        assert len(zoo.select("Animal", weight=5.0)) == 2

    def test_select_with_predicate(self, zoo):
        for index in range(5):
            zoo.create("Animal", name=f"a{index}", weight=float(index))
        heavy = zoo.select("Animal",
                           predicate=lambda o: (o.get("weight") or 0) > 2)
        assert len(heavy) == 2

    def test_find_one(self, zoo):
        zoo.create("Animal", name="Solo")
        assert zoo.find_one("Animal", name="Solo")["name"] == "Solo"

    def test_find_one_missing(self, zoo):
        with pytest.raises(ObjectNotFound):
            zoo.find_one("Animal", name="Ghost")

    def test_find_one_ambiguous(self, zoo):
        zoo.create("Animal", name="Twin")
        zoo.create("Animal", name="Twin")
        with pytest.raises(ObjectNotFound):
            zoo.find_one("Animal", name="Twin")


class TestReferences:
    @pytest.fixture()
    def linked(self):
        db = ObjectDatabase("linked")
        db.define_class("Dept", [Attribute("name", "string")])
        db.define_class("Emp", [
            Attribute("name", "string"),
            Attribute("dept", "object", target="Dept"),
            Attribute("buddies", "object", target="Emp", many=True),
        ])
        return db

    def test_object_reference_stored_as_oid(self, linked):
        dept = linked.create("Dept", name="IT")
        emp = linked.create("Emp", name="A", dept=dept)
        assert emp.deref("dept")["name"] == "IT"

    def test_many_valued_reference(self, linked):
        first = linked.create("Emp", name="A")
        second = linked.create("Emp", name="B", buddies=[first])
        assert [b["name"] for b in second.deref_many("buddies")] == ["A"]

    def test_many_defaults_to_empty_list(self, linked):
        emp = linked.create("Emp", name="A")
        assert emp.deref_many("buddies") == []

    def test_non_object_value_rejected(self, linked):
        with pytest.raises(SchemaError):
            linked.create("Emp", name="A", dept="IT")

    def test_dangling_reference_raises_on_deref(self, linked):
        dept = linked.create("Dept", name="IT")
        emp = linked.create("Emp", name="A", dept=dept)
        linked.delete(dept.oid)
        with pytest.raises(ObjectNotFound):
            emp.deref("dept")

    def test_banner(self):
        db = ObjectDatabase("x", product="Ontos", version="3.1")
        assert db.banner == "Ontos 3.1"

    def test_create_many(self, linked):
        objs = linked.create_many("Dept", [{"name": "A"}, {"name": "B"}])
        assert len(objs) == 2
