"""Schema evolution: adding attributes to live classes."""

import pytest

from repro.errors import SchemaError
from repro.oodb import Attribute, ObjectDatabase


@pytest.fixture()
def db():
    db = ObjectDatabase("evo")
    db.define_class("Person", [Attribute("name", "string", required=True)])
    db.define_class("Doctor", [Attribute("position", "string")],
                    bases=["Person"])
    db.create("Person", name="Alice")
    db.create("Doctor", name="Bob", position="RMO")
    return db


class TestAddAttribute:
    def test_backfills_existing_objects(self, db):
        db.add_attribute("Person", Attribute("age", "integer"), default=30)
        for obj in db.extent("Person"):
            assert obj["age"] == 30

    def test_backfill_reaches_subclasses(self, db):
        db.add_attribute("Person", Attribute("email", "string"))
        bob = db.find_one("Doctor", name="Bob")
        assert bob["email"] is None

    def test_new_objects_accept_attribute(self, db):
        db.add_attribute("Person", Attribute("age", "integer"))
        carol = db.create("Person", name="Carol", age=25)
        assert carol["age"] == 25

    def test_queryable_after_evolution(self, db):
        db.add_attribute("Person", Attribute("age", "integer"), default=40)
        db.create("Person", name="Dan", age=20)
        rows = db.query("SELECT name FROM Person WHERE age > 30")
        assert {r["name"] for r in rows} == {"Alice", "Bob"}

    def test_multi_valued_defaults_to_empty_list(self, db):
        db.add_attribute("Person", Attribute("tags", "string", many=True))
        alice = db.find_one("Person", name="Alice")
        assert alice["tags"] == []

    def test_duplicate_attribute_rejected(self, db):
        with pytest.raises(SchemaError):
            db.add_attribute("Person", Attribute("name", "string"))

    def test_inherited_clash_rejected(self, db):
        with pytest.raises(SchemaError):
            db.add_attribute("Doctor", Attribute("name", "string"))

    def test_subclass_kind_conflict_rejected(self, db):
        db.schema.define_class("Nurse", [Attribute("grade", "integer")],
                               bases=["Person"])
        with pytest.raises(SchemaError):
            db.add_attribute("Person", Attribute("grade", "string"))

    def test_required_needs_default(self, db):
        with pytest.raises(SchemaError):
            db.add_attribute("Person",
                             Attribute("ssn", "string", required=True))
        db.add_attribute("Person",
                         Attribute("ssn", "string", required=True),
                         default="unknown")
        assert db.find_one("Person", name="Alice")["ssn"] == "unknown"

    def test_default_validated(self, db):
        with pytest.raises(SchemaError):
            db.add_attribute("Person", Attribute("age", "integer"),
                             default="thirty")

    def test_set_after_evolution_validates(self, db):
        db.add_attribute("Person", Attribute("age", "integer"))
        alice = db.find_one("Person", name="Alice")
        alice.set("age", 33)
        with pytest.raises(SchemaError):
            alice.set("age", "old")
