"""OQL string-query tests."""

import datetime

import pytest

from repro.errors import OqlError
from repro.oodb import Attribute, ObjectDatabase


@pytest.fixture()
def db():
    db = ObjectDatabase("q")
    db.define_class("Dept", [Attribute("name", "string")])
    db.define_class("Emp", [
        Attribute("name", "string"),
        Attribute("salary", "real"),
        Attribute("hired", "date"),
        Attribute("dept", "object", target="Dept"),
    ])
    it = db.create("Dept", name="IT")
    hr = db.create("Dept", name="HR")
    db.create("Emp", name="Alice", salary=90.0,
              hired=datetime.date(1995, 3, 1), dept=it)
    db.create("Emp", name="Bob", salary=60.0,
              hired=datetime.date(1997, 6, 1), dept=hr)
    db.create("Emp", name="Carol", salary=75.0,
              hired=datetime.date(1996, 1, 15), dept=it)
    db.create("Emp", name="Dan", salary=None, hired=None, dept=None)
    return db


class TestProjection:
    def test_star_projection_includes_meta(self, db):
        rows = db.query("SELECT * FROM Dept")
        assert {"name", "_oid", "_class"} <= set(rows[0])

    def test_named_projection(self, db):
        rows = db.query("SELECT name, salary FROM Emp WHERE name = 'Alice'")
        assert rows == [{"name": "Alice", "salary": 90.0}]

    def test_path_projection_derefs(self, db):
        rows = db.query("SELECT name, dept.name FROM Emp WHERE name = 'Bob'")
        assert rows[0]["dept.name"] == "HR"

    def test_null_reference_path_is_none(self, db):
        rows = db.query("SELECT dept.name FROM Emp WHERE name = 'Dan'")
        assert rows[0]["dept.name"] is None


class TestPredicates:
    def test_comparison(self, db):
        rows = db.query("SELECT name FROM Emp WHERE salary > 70")
        assert {r["name"] for r in rows} == {"Alice", "Carol"}

    def test_and_or(self, db):
        rows = db.query(
            "SELECT name FROM Emp WHERE salary > 70 AND dept.name = 'IT' "
            "OR name = 'Bob'")
        assert {r["name"] for r in rows} == {"Alice", "Carol", "Bob"}

    def test_not_and_parentheses(self, db):
        rows = db.query(
            "SELECT name FROM Emp WHERE NOT (salary < 70) AND salary >= 70")
        assert {r["name"] for r in rows} == {"Alice", "Carol"}

    def test_like(self, db):
        rows = db.query("SELECT name FROM Emp WHERE name LIKE 'C%'")
        assert rows == [{"name": "Carol"}]

    def test_is_null(self, db):
        rows = db.query("SELECT name FROM Emp WHERE salary IS NULL")
        assert rows == [{"name": "Dan"}]

    def test_is_not_null(self, db):
        rows = db.query("SELECT name FROM Emp WHERE salary IS NOT NULL")
        assert len(rows) == 3

    def test_date_comparison_with_string_literal(self, db):
        rows = db.query("SELECT name FROM Emp WHERE hired < '1996-06-01'")
        assert {r["name"] for r in rows} == {"Alice", "Carol"}

    def test_null_comparisons_are_false(self, db):
        rows = db.query("SELECT name FROM Emp WHERE salary > 0")
        assert "Dan" not in {r["name"] for r in rows}


class TestAliasAndOrder:
    def test_alias_paths(self, db):
        rows = db.query("SELECT e.name FROM Emp e WHERE e.salary > 80")
        assert rows == [{"e.name": "Alice"}]

    def test_order_by(self, db):
        rows = db.query("SELECT name FROM Emp WHERE salary IS NOT NULL "
                        "ORDER BY salary DESC")
        assert [r["name"] for r in rows] == ["Alice", "Carol", "Bob"]

    def test_order_nulls_first_ascending(self, db):
        rows = db.query("SELECT name FROM Emp ORDER BY salary")
        assert rows[0]["name"] == "Dan"


class TestErrors:
    def test_missing_from(self, db):
        with pytest.raises(OqlError):
            db.query("SELECT name WHERE x = 1")

    def test_bad_token(self, db):
        with pytest.raises(OqlError):
            db.query("SELECT name FROM Emp WHERE x ~ 1")

    def test_trailing_garbage(self, db):
        with pytest.raises(OqlError):
            db.query("SELECT name FROM Emp extra tokens ( (")

    def test_like_requires_string(self, db):
        with pytest.raises(OqlError):
            db.query("SELECT name FROM Emp WHERE name LIKE 5")

    def test_path_through_scalar_rejected(self, db):
        with pytest.raises(OqlError):
            db.query("SELECT name.inner FROM Emp WHERE salary > 0")


class TestCountStar:
    def test_count_all(self, db):
        assert db.query("SELECT COUNT(*) FROM Emp") == [{"count": 4}]

    def test_count_with_predicate(self, db):
        assert db.query("SELECT COUNT(*) FROM Emp WHERE salary > 70") == \
            [{"count": 2}]

    def test_count_includes_subclasses(self, db):
        db.define_class("Contractor", [], bases=["Emp"])
        db.create("Contractor", name="Zed", salary=10.0)
        assert db.query("SELECT COUNT(*) FROM Emp")[0]["count"] == 5

    def test_count_zero(self, db):
        assert db.query("SELECT COUNT(*) FROM Emp WHERE salary > 9999") == \
            [{"count": 0}]

    def test_count_is_not_a_reserved_word(self, db):
        # 'count' still works as an attribute path elsewhere
        rows = db.query("SELECT name FROM Emp WHERE name = 'Alice'")
        assert rows == [{"name": "Alice"}]
