"""Coverage for smaller public surfaces: results, errors, naming sugar,
browser escaping, render helpers."""

import datetime

import pytest

from repro.errors import SqlSyntaxError, WebTassiliSyntaxError
from repro.sql.result import ResultSet
from repro.wrappers.base import (ExportedAttribute, ExportedFunction,
                                 ExportedType)


class TestResultSet:
    @pytest.fixture()
    def result(self):
        return ResultSet(columns=["id", "name"],
                         rows=[(1, "a"), (2, "b"), (3, None)])

    def test_len_bool_iter(self, result):
        assert len(result) == 3
        assert bool(result)
        assert not ResultSet.empty()
        assert list(iter(result))[0] == (1, "a")

    def test_first_and_scalar(self, result):
        assert result.first() == (1, "a")
        assert result.scalar() == 1
        assert ResultSet.empty().first() is None
        assert ResultSet.empty().scalar() is None

    def test_column_by_name_case_insensitive(self, result):
        assert result.column("NAME") == ["a", "b", None]
        with pytest.raises(KeyError):
            result.column("ghost")

    def test_to_dicts(self, result):
        assert result.to_dicts()[0] == {"id": 1, "name": "a"}

    def test_empty_rowcount(self):
        assert ResultSet.empty(7).rowcount == 7

    def test_rows_are_tuples(self):
        result = ResultSet(columns=["x"], rows=[[1], [2]])
        assert all(isinstance(row, tuple) for row in result.rows)


class TestErrorFormatting:
    def test_sql_syntax_error_with_position(self):
        error = SqlSyntaxError("bad token", line=3, column=7)
        assert "line 3" in str(error)
        assert "column 7" in str(error)

    def test_sql_syntax_error_without_position(self):
        assert str(SqlSyntaxError("bad token")) == "bad token"

    def test_webtassili_error_carries_position(self):
        error = WebTassiliSyntaxError("oops", column=12)
        assert error.column == 12


class TestNamingSugar:
    def test_resolve_proxy(self):
        from repro.orb import (InMemoryNetwork, InterfaceBuilder, create_orb,
                               ORBIX, VISIBROKER, start_naming_service)
        network = InMemoryNetwork()
        server = create_orb(ORBIX, network)
        client = create_orb(VISIBROKER, network)
        interface = InterfaceBuilder("Echo").operation("echo", "v").build()

        class Servant:
            def echo(self, v):
                return v

        ior = server.activate(Servant(), interface)
        __, naming = start_naming_service(server)
        naming.bind("svc/echo", ior)
        proxy = naming.resolve_proxy(client, "svc/echo", interface)
        assert proxy.echo(41) == 41


class TestBrowserEscaping:
    def test_invoke_with_quote_in_argument(self, healthcare):
        from repro.apps.healthcare import topology as topo
        browser = healthcare.browser(topo.QUT)
        # a title containing a quote must survive statement round-trip
        result = browser.invoke(topo.RBH, "ResearchProjects", "Funding",
                                "O'Neil's study")
        assert result.data is None  # no such project, but no parse error

    def test_fetch_with_quotes(self, healthcare):
        from repro.apps.healthcare import topology as topo
        browser = healthcare.browser(topo.QUT)
        result = browser.fetch(
            topo.RBH,
            "SELECT COUNT(*) FROM Patient WHERE Name = 'O''Brien'")
        assert result.data.scalar() >= 0

    def test_invoke_literals(self, healthcare):
        from repro.apps.healthcare import topology as topo
        browser = healthcare.browser(topo.QUT)
        result = browser.invoke(topo.RBH, "PatientHistory", "Description",
                                "Nobody", None)
        assert result.data is None


class TestExportRendering:
    def test_zero_arg_function_render(self):
        fn = ExportedFunction("All", (), "rows")
        assert fn.render() == "function rows All();"

    def test_type_render_without_members(self):
        exported = ExportedType("Empty")
        assert exported.render() == "Type Empty {\n}"

    def test_attribute_render(self):
        attribute = ExportedAttribute("Patient.Name", "string")
        assert attribute.render() == "attribute string Patient.Name;"


class TestDialectsEdgeCases:
    def test_date_literal_formatting(self):
        from repro.sql.dialect import ORACLE
        assert ORACLE.format_literal(datetime.date(1998, 2, 1)) == \
            "'1998-02-01'"

    def test_unformattable_literal(self):
        from repro.errors import SqlError
        from repro.sql.dialect import GENERIC
        with pytest.raises(SqlError):
            GENERIC.format_literal(object())

    def test_quote_identifier_doubles_quotes(self):
        from repro.sql.dialect import GENERIC
        assert GENERIC.quote_identifier('we"ird') == '"we""ird"'
