"""Smoke tests: every shipped example runs cleanly end to end."""

import contextlib
import io
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

sys.path.insert(0, str(EXAMPLES_DIR))


def run_example(module_name: str) -> str:
    module = __import__(module_name)
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        module.main()
    return buffer.getvalue()


class TestExamples:
    def test_quickstart(self):
        output = run_example("quickstart")
        assert "Deployed federation" in output
        assert "Research" in output
        assert "GIOP messages" in output

    def test_healthcare_tour(self):
        output = run_example("healthcare_tour")
        assert "Display Coalitions With Information Medical Research" in output
        assert "SELECT a.Funding FROM ResearchProjects a" in output
        assert "Medical_to_MedicalInsurance" in output
        assert "StudentId" in output

    def test_federation_admin(self):
        output = run_example("federation_admin")
        assert "Allied Health" in output
        assert "TravelClinic_to_PhysioPractice" in output
        assert "physiotherapy" in output

    def test_scalability_study(self):
        output = run_example("scalability_study")
        assert "Per-query discovery cost" in output
        assert "global-schema comparisons" in output

    def test_middleware_demo(self):
        output = run_example("middleware_demo")
        assert "stringified IOR" in output
        assert "GIOP request frame" in output
        assert "cities():" in output
