"""Wrapper (Information Source Interface) tests for all three kinds."""

import pytest

from repro.errors import AccessError, TranslationError
from repro.gateway import LocalDriver
from repro.oodb import Attribute, ObjectDatabase
from repro.orb import InMemoryNetwork, create_orb, ORBIX, ORBIXWEB
from repro.sql.engine import Database
from repro.wrappers import (CallableBinding, ExportedAttribute,
                            ExportedFunction, ExportedType, ISI_INTERFACE,
                            ObjectDbWrapper, OqlBinding, RelationalWrapper,
                            RemoteIsi, SqlBinding, serve_isi)


def projects_type():
    return ExportedType(
        "ResearchProjects",
        attributes=[ExportedAttribute("ResearchProjects.Title", "string")],
        functions=[
            ExportedFunction("Funding", ("title",), "real",
                             SqlBinding("SELECT Funding FROM projects "
                                        "WHERE Title = ?", ("title",))),
            ExportedFunction("All", (), "rows",
                             SqlBinding("SELECT * FROM projects")),
            ExportedFunction("Unbound", ()),
        ])


@pytest.fixture()
def relational():
    db = Database("RBH", dialect="oracle")
    db.execute("CREATE TABLE projects (Title VARCHAR(60), Funding REAL)")
    db.execute("INSERT INTO projects VALUES ('AIDS and drugs', 1250000.0), "
               "('Melanoma', 400000.0)")
    driver = LocalDriver("oracle", "oracle")
    driver.register_database(db)
    connection = driver.connect("jdbc:oracle:RBH")
    return RelationalWrapper("RBH", connection, dialect=db.dialect,
                             exported_types=[projects_type()])


class TestExportModel:
    def test_render_type_declaration(self):
        rendered = projects_type().render()
        assert rendered.startswith("Type ResearchProjects {")
        assert "attribute string ResearchProjects.Title;" in rendered
        assert "function real Funding(title);" in rendered

    def test_function_lookup_case_insensitive(self):
        exported = projects_type()
        assert exported.function("funding").name == "Funding"

    def test_missing_function(self):
        with pytest.raises(AccessError):
            projects_type().function("Ghost")

    def test_duplicate_export_rejected(self, relational):
        with pytest.raises(AccessError):
            relational.export_type(projects_type())

    def test_describe_shape(self, relational):
        description = relational.describe()
        assert description["source"] == "RBH"
        assert description["language"] == "SQL"
        type_entry = description["types"][0]
        assert type_entry["name"] == "ResearchProjects"
        assert {f["name"] for f in type_entry["functions"]} == \
            {"Funding", "All", "Unbound"}


class TestRelationalWrapper:
    def test_scalar_invoke(self, relational):
        assert relational.invoke("ResearchProjects", "Funding",
                                 ["AIDS and drugs"]) == 1250000.0

    def test_rows_invoke(self, relational):
        result = relational.invoke("ResearchProjects", "All", [])
        assert len(result.rows) == 2

    def test_arity_checked(self, relational):
        with pytest.raises(AccessError):
            relational.invoke("ResearchProjects", "Funding", [])

    def test_unbound_function_rejected(self, relational):
        with pytest.raises(TranslationError):
            relational.invoke("ResearchProjects", "Unbound", [])

    def test_generate_sql_matches_paper(self, relational):
        sql = relational.generate_sql("ResearchProjects", "Funding",
                                      ["AIDS and drugs"])
        assert sql == ("SELECT Funding FROM projects "
                       "WHERE Title = 'AIDS and drugs'")

    def test_generate_sql_escapes_quotes(self, relational):
        sql = relational.generate_sql("ResearchProjects", "Funding",
                                      ["O'Neil's study"])
        assert "''" in sql

    def test_native_execution(self, relational):
        result = relational.execute_native(
            "SELECT COUNT(*) FROM projects WHERE Funding > ?", [500000])
        assert result.scalar() == 1

    def test_wrapper_name_derived_from_dialect(self, relational):
        assert relational.wrapper_name == "WebTassiliOracle"

    def test_invocation_counter(self, relational):
        before = relational.invocations
        relational.invoke("ResearchProjects", "All", [])
        assert relational.invocations == before + 1


@pytest.fixture()
def object_wrapper():
    db = ObjectDatabase("AMP", product="ObjectStore")
    db.define_class("Fund", [Attribute("name", "string"),
                             Attribute("category", "string"),
                             Attribute("value", "real")])
    db.create("Fund", name="Balanced", category="mixed", value=10.0)
    db.create("Fund", name="Growth", category="shares", value=12.5)

    def total_value(database):
        return sum(o["value"] for o in database.extent("Fund"))

    exported = ExportedType(
        "Funds",
        functions=[
            ExportedFunction("ByCategory", ("category",), "rows",
                             OqlBinding("SELECT name, value FROM Fund "
                                        "WHERE category = {category}",
                                        ("category",))),
            ExportedFunction("TotalValue", (), "real",
                             CallableBinding(total_value)),
        ])
    return ObjectDbWrapper("AMP", db, binding_style="c++",
                           exported_types=[exported])


class TestObjectWrapper:
    def test_oql_binding(self, object_wrapper):
        rows = object_wrapper.invoke("Funds", "ByCategory", ["shares"])
        assert rows == [{"name": "Growth", "value": 12.5}]

    def test_callable_binding(self, object_wrapper):
        assert object_wrapper.invoke("Funds", "TotalValue", []) == 22.5

    def test_oql_literal_escaping(self, object_wrapper):
        rows = object_wrapper.invoke("Funds", "ByCategory", ["it's"])
        assert rows == []

    def test_native_oql(self, object_wrapper):
        rows = object_wrapper.execute_native(
            "SELECT name FROM Fund WHERE value > 11")
        assert rows == [{"name": "Growth"}]

    def test_native_params_rejected(self, object_wrapper):
        with pytest.raises(TranslationError):
            object_wrapper.execute_native("SELECT name FROM Fund", ["x"])

    def test_describe_includes_binding_style(self, object_wrapper):
        assert object_wrapper.describe()["binding_style"] == "c++"

    def test_banner(self, object_wrapper):
        assert object_wrapper.banner.startswith("ObjectStore")


class TestRemoteIsi:
    @pytest.fixture()
    def remote(self, relational):
        network = InMemoryNetwork()
        server = create_orb(ORBIX, network)
        client = create_orb(ORBIXWEB, network)
        ior = serve_isi(server, relational)
        return network, RemoteIsi(client.proxy(ior, ISI_INTERFACE))

    def test_interface_fetched_remotely(self, remote):
        __, isi = remote
        assert [t.name for t in isi.exported_types()] == ["ResearchProjects"]
        assert isi.native_language == "SQL"
        assert isi.banner == "Oracle 8.0.5"

    def test_invoke_over_giop(self, remote):
        network, isi = remote
        network.metrics.reset()
        value = isi.invoke("ResearchProjects", "Funding", ["AIDS and drugs"])
        assert value == 1250000.0
        assert network.metrics.messages_sent == 1

    def test_resultset_crosses_wire(self, remote):
        __, isi = remote
        result = isi.invoke("ResearchProjects", "All", [])
        assert len(result.rows) == 2
        assert result.columns[0] == "Title"

    def test_native_query_remote(self, remote):
        __, isi = remote
        result = isi.execute_native("SELECT Title FROM projects "
                                    "ORDER BY Title")
        assert result.rows[0] == ("AIDS and drugs",)

    def test_remote_errors_propagate(self, remote):
        __, isi = remote
        with pytest.raises(AccessError):
            isi.invoke("Ghost", "Fn", [])
