"""Benchmark-support tests: scaled spaces, workloads, reporting."""

import pytest

from repro.bench import (HEALTHCARE_QUERIES, build_scaled_space,
                         discovery_workload, format_table, ratio,
                         sql_workload)


class TestScaledSpace:
    def test_counts(self):
        space = build_scaled_space(databases=40, coalitions=8)
        summary = space.registry.summary()
        assert summary["sources"] == 40
        assert summary["coalitions"] == 8
        assert summary["memberships"] == 40
        assert len(space.broadcast) == 40
        assert space.global_schema.source_count == 40

    def test_round_robin_membership(self):
        space = build_scaled_space(databases=12, coalitions=4)
        for coalition_name in space.coalition_topics:
            assert len(space.registry.coalition(coalition_name).members) == 3

    def test_ring_reachability(self):
        """Every coalition links onward, so cross-cluster discovery can
        always make progress."""
        space = build_scaled_space(databases=20, coalitions=5,
                                   links_per_coalition=1)
        linked_from = {link.from_name
                       for link in space.registry.service_links()}
        assert linked_from == set(space.coalition_topics)

    def test_deterministic_by_seed(self):
        first = build_scaled_space(20, 4, seed=7)
        second = build_scaled_space(20, 4, seed=7)
        assert [l.label for l in first.registry.service_links()] == \
            [l.label for l in second.registry.service_links()]

    def test_discovery_over_scaled_space(self):
        space = build_scaled_space(databases=60, coalitions=10)
        engine = space.discovery_engine()
        topic = list(space.coalition_topics.values())[3]
        result = engine.discover(topic, space.database_names[0],
                                 max_hops=10)
        assert result.resolved
        assert result.codatabases_contacted < 60  # never a full broadcast

    def test_invalid_shape_rejected(self):
        with pytest.raises(ValueError):
            build_scaled_space(databases=3, coalitions=5)


class TestWorkloads:
    def test_discovery_workload_shape(self):
        space = build_scaled_space(20, 4)
        queries = discovery_workload(space, 10, miss_rate=0.3, seed=1)
        assert len(queries) == 10
        assert all(q.start_database in space.database_names for q in queries)
        misses = [q for q in queries if not q.target_topic]
        assert misses  # at 30% over 10 queries, statistically guaranteed

    def test_workload_deterministic(self):
        space = build_scaled_space(20, 4)
        first = discovery_workload(space, 5, seed=3)
        second = discovery_workload(space, 5, seed=3)
        assert first == second

    def test_sql_workload_parses(self, healthcare):
        from repro.apps.healthcare import topology as topo
        db = healthcare.relational[topo.RBH]
        for statement in sql_workload(statements=25):
            db.execute(statement)  # must all be valid against RBH

    def test_healthcare_queries_cover_coalitions(self):
        assert "Medical Insurance" in HEALTHCARE_QUERIES


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table("T", ["name", "n"],
                            [["alpha", 1], ["b", 22222]])
        lines = text.splitlines()
        assert lines[0] == "== T =="
        assert "name" in lines[1] and "n" in lines[1]
        assert len(lines) == 5

    def test_float_formatting(self):
        text = format_table("T", ["v"], [[1234.5], [0.125]])
        assert "1,234" in text or "1,235" in text
        assert "0.12" in text

    def test_ratio(self):
        assert ratio(10, 2) == 5
        assert ratio(1, 0) == float("inf")


class TestScaledSystem:
    def test_deployed_scaled_system(self):
        from repro.bench import build_scaled_system
        system = build_scaled_system(databases=9, coalitions=3)
        assert system.registry.summary()["sources"] == 9
        assert len(system.deployment_map()) == 9
        # all three products in rotation
        assert {r.orb_product for r in system.deployment_map()} == {
            "Orbix", "OrbixWeb", "VisiBroker for Java"}
        # discovery works over the ORB
        processor = system.query_processor()
        topic = system.registry.coalition(
            system.registry.coalition_names()[1]).information_type
        result = processor.discovery.discover(topic, "db00000")
        assert result.resolved
        # data path works too
        isi = system.wrapper_client("db00003")
        value = isi.invoke("Items", "LabelOf", [1])
        assert isinstance(value, str)

    def test_scaled_system_shape_validated(self):
        from repro.bench import build_scaled_system
        import pytest as _pytest
        with _pytest.raises(ValueError):
            build_scaled_system(databases=2, coalitions=5)
