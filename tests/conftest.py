"""Shared fixtures.

The healthcare deployment is expensive (14 engines + data + 28 CORBA
activations), so it is built once per session; tests that mutate
topology build their own systems.
"""

from __future__ import annotations

import os

import pytest

from repro.apps.healthcare import build_healthcare_system
from repro.sql.engine import Database


@pytest.fixture(scope="session")
def healthcare():
    """The full Figure-1 deployment (read-only across tests)."""
    return build_healthcare_system()


@pytest.fixture(scope="session")
def chaos_seed() -> int:
    """Seed for fault-injection scenarios.  CI's tier-2 job sweeps a
    fixed set of seeds via the CHAOS_SEED environment variable."""
    return int(os.environ.get("CHAOS_SEED", "1999"))


@pytest.fixture()
def people_db() -> Database:
    """A small relational database used across SQL tests."""
    db = Database("people")
    db.execute("CREATE TABLE person (id INT PRIMARY KEY, "
               "name VARCHAR(40) NOT NULL, age INT, city VARCHAR(30))")
    db.executemany(
        "INSERT INTO person VALUES (?, ?, ?, ?)",
        [
            [1, "Alice", 34, "Brisbane"],
            [2, "Bob", 28, "Cairns"],
            [3, "Carol", 45, "Brisbane"],
            [4, "Dan", None, "Sydney"],
            [5, "Eve", 28, None],
        ])
    db.execute("CREATE TABLE orders (order_id INT PRIMARY KEY, "
               "person_id INT, amount REAL, placed DATE)")
    db.executemany(
        "INSERT INTO orders VALUES (?, ?, ?, ?)",
        [
            [10, 1, 120.5, "1998-01-10"],
            [11, 1, 75.0, "1998-02-02"],
            [12, 2, 12.25, "1998-02-11"],
            [13, 3, 430.0, "1998-03-01"],
        ])
    return db
