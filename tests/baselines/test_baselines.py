"""Baseline tests: broadcast discovery and global-schema integration."""

import pytest

from repro.baselines import BroadcastDirectory, GlobalSchemaMultidatabase
from repro.core.model import Ontology, SourceDescription
from repro.errors import WebFinditError


def description(name, info):
    return SourceDescription(name=name, information_type=info)


class TestBroadcast:
    @pytest.fixture()
    def directory(self):
        directory = BroadcastDirectory()
        directory.register(description("A", "cardiology"))
        directory.register(description("B", "oncology"))
        directory.register(description("C", "cardiology research"))
        return directory

    def test_every_query_contacts_all_sources(self, directory):
        result = directory.discover("cardiology")
        assert result.sources_contacted == 3
        assert result.metadata_calls == 3

    def test_matches_sorted_by_score(self, directory):
        result = directory.discover("cardiology research")
        assert result.matches[0].name == "C"
        assert {m.name for m in result.matches} == {"A", "C"}

    def test_miss_still_contacts_everyone(self, directory):
        result = directory.discover("astrophysics")
        assert not result.resolved
        assert result.sources_contacted == 3

    def test_contacts_accumulate(self, directory):
        directory.discover("x")
        directory.discover("y")
        assert directory.total_contacts == 6

    def test_cost_grows_linearly_with_size(self):
        for n in (10, 100):
            directory = BroadcastDirectory()
            for index in range(n):
                directory.register(description(f"s{index}", "topic"))
            assert directory.discover("topic").sources_contacted == n

    def test_ontology_applies(self):
        ontology = Ontology()
        ontology.add_synonyms("cardiology", ["heart"])
        directory = BroadcastDirectory(ontology=ontology)
        directory.register(description("A", "cardiology"))
        assert directory.discover("heart").resolved


class TestGlobalSchema:
    def test_first_source_costs_nothing(self):
        multidatabase = GlobalSchemaMultidatabase()
        report = multidatabase.integrate_source(
            description("A", "cardiology"), ["t1", "t2"])
        assert report.comparisons == 0
        assert report.items_added == 2

    def test_integration_cost_grows_with_existing_schema(self):
        multidatabase = GlobalSchemaMultidatabase()
        costs = []
        for index in range(5):
            report = multidatabase.integrate_source(
                description(f"s{index}", "topic"),
                [f"s{index}_t{j}" for j in range(3)])
            costs.append(report.comparisons)
        assert costs == [0, 9, 18, 27, 36]  # linear per step = quadratic total

    def test_conflicts_detected(self):
        multidatabase = GlobalSchemaMultidatabase()
        multidatabase.integrate_source(description("A", "x"), ["patients"])
        report = multidatabase.integrate_source(
            description("B", "y"), ["patients"])
        assert report.conflicts_resolved == 1
        assert multidatabase.total_conflicts == 1

    def test_duplicate_source_rejected(self):
        multidatabase = GlobalSchemaMultidatabase()
        multidatabase.integrate_source(description("A", "x"), ["t"])
        with pytest.raises(WebFinditError):
            multidatabase.integrate_source(description("A", "x"), ["t"])

    def test_query_is_single_lookup(self):
        multidatabase = GlobalSchemaMultidatabase()
        for index in range(20):
            multidatabase.integrate_source(
                description(f"s{index}", "cardiology" if index % 2
                            else "oncology"), ["t"])
        matches = multidatabase.discover("cardiology")
        assert len(matches) == 10

    def test_remove_source_sweeps_remainder(self):
        multidatabase = GlobalSchemaMultidatabase()
        multidatabase.integrate_source(description("A", "x"), ["t1"])
        multidatabase.integrate_source(description("B", "y"), ["t2"])
        before = multidatabase.total_comparisons
        multidatabase.remove_source("A")
        assert multidatabase.total_comparisons > before
        assert multidatabase.source_count == 1
        assert multidatabase.item_count == 1

    def test_remove_unknown(self):
        with pytest.raises(WebFinditError):
            GlobalSchemaMultidatabase().remove_source("ghost")
