"""Robustness fuzzing: corrupted CDR/GIOP bytes must raise MarshalError,
never crash or hang."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MarshalError
from repro.orb.cdr import decode_any, encode_any
from repro.orb.giop import RequestMessage, decode_message, encode_message

SAMPLE = {"rows": [[1, "x", None], [2.5, True, b"\x00"]],
          "label": "payload"}


@given(cut=st.integers(min_value=0, max_value=len(encode_any(SAMPLE)) - 1))
@settings(max_examples=80, deadline=None)
def test_truncated_cdr_raises_or_decodes_prefix(cut):
    """Truncation either raises MarshalError or (when the cut lands on a
    value boundary) yields a well-formed prefix — never an exception of
    another type."""
    data = encode_any(SAMPLE)[:cut]
    try:
        decode_any(data)
    except MarshalError:
        pass


@given(position=st.integers(min_value=0, max_value=200),
       replacement=st.integers(min_value=0, max_value=255))
@settings(max_examples=120, deadline=None)
def test_bitflipped_cdr_never_crashes(position, replacement):
    data = bytearray(encode_any(SAMPLE))
    position %= len(data)
    data[position] = replacement
    try:
        decode_any(bytes(data))
    except MarshalError:
        pass
    except UnicodeDecodeError:
        pytest.fail("string decoding leaked a UnicodeDecodeError")


@given(junk=st.binary(min_size=0, max_size=64))
@settings(max_examples=100, deadline=None)
def test_random_bytes_as_giop(junk):
    try:
        decode_message(junk)
    except MarshalError:
        pass


@given(position=st.integers(min_value=0, max_value=500),
       replacement=st.integers(min_value=0, max_value=255))
@settings(max_examples=120, deadline=None)
def test_bitflipped_giop_never_crashes(position, replacement):
    frame = bytearray(encode_message(RequestMessage(
        request_id=9, object_key=b"orb/X/obj", operation="op",
        arguments=[SAMPLE])))
    position %= len(frame)
    frame[position] = replacement
    try:
        decode_message(bytes(frame))
    except MarshalError:
        pass
    except UnicodeDecodeError:
        pytest.fail("GIOP decode leaked a UnicodeDecodeError")
