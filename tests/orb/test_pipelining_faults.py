"""Chaos conformance for the GIOP pipeline: faults land on exactly one
request.

The serial transport's failure unit is the whole connection; a
pipelined connection multiplexes many callers, so the suite pins down
the sharper contract ISSUE 5 demands:

* a mid-pipeline ``drop``/``truncate``/``corrupt``/``slow_then_die``
  fault fails only the request it hit — every sibling in flight on the
  same connection completes with *its own* reply (no cross-wiring);
* when the connection itself dies with requests in flight, each caller
  gets its own failure, and the idempotence gate decides *per caller*
  whether a resend is safe — a non-idempotent request is never resent;
* health accounting sees one failure per failed request, not one per
  dead connection.
"""

import threading
import time

import pytest

from repro.core.resilience import HealthBoard
from repro.deadline import call_policy
from repro.errors import CommFailure, MarshalError
from repro.orb import (InterfaceBuilder, TcpTransport, create_orb, ORBIX,
                       VISIBROKER)
from repro.orb.faults import FaultyTransport

pytestmark = pytest.mark.chaos

ECHO = InterfaceBuilder("Echo").operation("echo", "value").build()


class CountingEchoServant:
    """Echoes after a fixed delay, counting executions per value — the
    witness that a non-idempotent request was never resent."""

    def __init__(self, delay=0.0):
        self.delay = delay
        self.calls = {}
        self._lock = threading.Lock()

    def echo(self, value):
        with self._lock:
            self.calls[value] = self.calls.get(value, 0) + 1
        if self.delay:
            time.sleep(self.delay)
        return value


def pipelined_rig(seed, stripes=1, delay=0.01, depth=32):
    """A faulty pipelined transport serving one echo servant.  Returns
    ``(faulty, tcp, proxy, endpoint, servant)``."""
    tcp = TcpTransport(pipelined=True, stripes=stripes,
                       pipeline_depth=depth)
    faulty = FaultyTransport(tcp, seed=seed)
    server = create_orb(ORBIX, faulty, host="127.0.0.1", port=0)
    client = create_orb(VISIBROKER, faulty, host="127.0.0.1", port=0)
    servant = CountingEchoServant(delay=delay)
    ior = server.activate(servant, ECHO, object_name="echo")
    proxy = client.proxy(ior, ECHO)
    return faulty, tcp, proxy, ior.primary.endpoint, servant


def fire_batch(proxy, count, idempotent=None, barrier_timeout=5.0,
               payload=None):
    """``count`` concurrent callers; returns ``(results, errors)`` with
    errors keyed by caller index.  *payload* maps an index to the echo
    argument (default: the index itself)."""
    barrier = threading.Barrier(count)
    results, errors = {}, {}
    payload = payload or (lambda index: index)

    def caller(index):
        barrier.wait(timeout=barrier_timeout)
        try:
            if idempotent is None:
                results[index] = proxy.echo(payload(index))
            else:
                with call_policy(idempotent=idempotent):
                    results[index] = proxy.echo(payload(index))
        except Exception as exc:  # noqa: BLE001 - the assertion target
            errors[index] = exc

    threads = [threading.Thread(target=caller, args=(index,))
               for index in range(count)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return results, errors


@pytest.mark.parametrize("stripes", [1, 4],
                         ids=["stripes1", "stripes4"])
def test_mid_pipeline_drop_fails_only_one_request(chaos_seed, stripes):
    """One scripted reply drop in the middle of a concurrent batch:
    exactly one caller fails, every survivor gets its own value."""
    faulty, tcp, proxy, endpoint, servant = pipelined_rig(chaos_seed,
                                                          stripes=stripes)
    try:
        faulty.drop_replies(endpoint, after=2, until=3)
        results, errors = fire_batch(proxy, 8)
        assert faulty.injected["drop_reply"] == 1
        assert len(errors) == 1
        assert all(isinstance(exc, CommFailure)
                   for exc in errors.values())
        assert all(results[index] == index for index in results)
        assert set(results) | set(errors) == set(range(8))
        # The dropped request executed server-side exactly once: the
        # non-idempotent default forbids a blind resend.
        assert all(count == 1 for count in servant.calls.values())
    finally:
        tcp.close()


@pytest.mark.parametrize("fault", ["truncate", "corrupt"])
def test_mid_pipeline_damage_fails_only_one_request(chaos_seed, fault):
    """A truncated or corrupted reply poisons one caller's decode and
    nobody else's."""
    faulty, tcp, proxy, endpoint, servant = pipelined_rig(chaos_seed,
                                                          stripes=2)
    try:
        if fault == "truncate":
            faulty.truncate_replies(endpoint, keep_bytes=8,
                                    after=3, until=4)
        else:
            faulty.corrupt_replies(endpoint, after=3, until=4)
        # Long string payloads so a byte flip reliably breaks the CDR
        # string decode (ints can absorb a flip silently).
        payload = lambda index: f"value-{index}-" + "x" * 24  # noqa: E731
        results, errors = fire_batch(proxy, 8, payload=payload)
        assert faulty.injected[f"{fault}_reply"] == 1
        assert len(errors) == 1
        assert all(isinstance(exc, (CommFailure, MarshalError))
                   for exc in errors.values())
        assert all(results[index] == payload(index) for index in results)
        assert set(results) | set(errors) == set(range(8))
    finally:
        tcp.close()


def test_slow_then_die_survivors_complete(chaos_seed):
    """A brown-out mid-batch: the calls that got through before the
    death are answered correctly; the rest fail individually."""
    faulty, tcp, proxy, endpoint, servant = pipelined_rig(chaos_seed,
                                                          stripes=2)
    try:
        faulty.slow_then_die(endpoint, calls=4, latency=0.005)
        results, errors = fire_batch(proxy, 10)
        assert len(results) == 4
        assert len(errors) == 6
        assert all(results[index] == index for index in results)
        assert all(isinstance(exc, CommFailure)
                   for exc in errors.values())
        assert faulty.injected["refuse"] == 6
    finally:
        tcp.close()


def test_seeded_fault_rate_attribution(chaos_seed):
    """Randomised (seeded) reply loss over a concurrent batch: the
    failure count matches the injection count exactly, and every
    surviving reply is the caller's own."""
    faulty, tcp, proxy, endpoint, servant = pipelined_rig(chaos_seed,
                                                          stripes=4)
    try:
        faulty.drop_replies(endpoint, rate=0.3)
        results, errors = fire_batch(proxy, 16)
        assert len(errors) == faulty.injected["drop_reply"]
        assert all(results[index] == index for index in results)
        assert set(results) | set(errors) == set(range(16))
        assert all(count == 1 for count in servant.calls.values())
    finally:
        tcp.close()


def _kill_first_stripe(tcp, endpoint, expected_in_flight, timeout=3.0):
    """Wait until *expected_in_flight* requests are in flight, then
    sever the (single) pipelined connection under them."""
    deadline = time.monotonic() + timeout
    while tcp.pipeline_in_flight(endpoint) < expected_in_flight:
        if time.monotonic() > deadline:
            raise AssertionError(
                f"never saw {expected_in_flight} requests in flight "
                f"(got {tcp.pipeline_in_flight(endpoint)})")
        time.sleep(0.002)
    with tcp._channels_lock:
        channel = tcp._channels[endpoint][0]
    channel.close()


def test_channel_death_gates_resend_on_idempotence(chaos_seed):
    """The connection dies with four requests in flight.  Idempotent
    callers are replayed on a fresh serial connection and succeed;
    non-idempotent callers fail — and are *never* resent (the servant
    saw their request exactly once)."""
    faulty, tcp, proxy, endpoint, servant = pipelined_rig(
        chaos_seed, stripes=1, delay=0.3)
    try:
        barrier = threading.Barrier(4)
        results, errors = {}, {}

        def caller(index, idempotent):
            barrier.wait(timeout=5.0)
            try:
                with call_policy(idempotent=idempotent):
                    results[index] = proxy.echo(index)
            except Exception as exc:  # noqa: BLE001
                errors[index] = exc

        threads = [threading.Thread(target=caller,
                                    args=(index, index < 2))
                   for index in range(4)]
        for thread in threads:
            thread.start()
        _kill_first_stripe(tcp, endpoint, expected_in_flight=4)
        for thread in threads:
            thread.join()
        # Idempotent callers (0, 1): resent serially, correct replies.
        # Server-side executions: the replay, plus the original if its
        # bytes beat the kill to the server — 1 or 2, never more (the
        # gate allows exactly one replay).
        assert results == {0: 0, 1: 1}
        assert 1 <= servant.calls[0] <= 2
        assert 1 <= servant.calls[1] <= 2
        # Non-idempotent callers (2, 3): their own CommFailure each,
        # at most one server-side execution — never resent.
        assert set(errors) == {2, 3}
        for exc in errors.values():
            assert isinstance(exc, CommFailure)
            assert "not resending" in str(exc)
        assert servant.calls.get(2, 0) <= 1
        assert servant.calls.get(3, 0) <= 1
    finally:
        tcp.close()


def test_health_counts_one_failure_per_request(chaos_seed):
    """One dead connection with four requests in flight is four failed
    requests: breaker/health accounting must see four failures on the
    endpoint's breaker, not one."""
    faulty, tcp, proxy, endpoint, servant = pipelined_rig(
        chaos_seed, stripes=1, delay=0.3)
    board = HealthBoard(failure_threshold=10)
    try:
        barrier = threading.Barrier(4)

        def caller(index):
            barrier.wait(timeout=5.0)
            try:
                proxy.echo(index)  # non-idempotent: no resend
            except CommFailure:
                board.record("hot-codb", ok=False)
            else:
                board.record("hot-codb", ok=True)

        threads = [threading.Thread(target=caller, args=(index,))
                   for index in range(4)]
        for thread in threads:
            thread.start()
        _kill_first_stripe(tcp, endpoint, expected_in_flight=4)
        for thread in threads:
            thread.join()
        snapshot = board.snapshot()["hot-codb"]
        assert snapshot["failures"] == 4
        assert snapshot["successes"] == 0
    finally:
        tcp.close()


def test_dead_stripe_does_not_take_siblings(chaos_seed):
    """Killing one stripe of several fails only the requests in flight
    on it; requests on sibling stripes complete untouched, and the
    survivors keep serving traffic afterwards."""
    faulty, tcp, proxy, endpoint, servant = pipelined_rig(
        chaos_seed, stripes=3, delay=0.4)
    try:
        results, errors = {}, {}

        def caller(index):
            try:
                results[index] = proxy.echo(index)
            except Exception as exc:  # noqa: BLE001
                errors[index] = exc

        # Staggered starts make stripe assignment deterministic:
        # least-loaded checkout lands callers 0..5 on stripes
        # A B C A B C, so killing A fails exactly {0, 3}.
        threads = [threading.Thread(target=caller, args=(index,))
                   for index in range(6)]
        for thread in threads:
            thread.start()
            time.sleep(0.03)
        _kill_first_stripe(tcp, endpoint, expected_in_flight=6)
        for thread in threads:
            thread.join()
        # Exactly the requests on the murdered stripe failed; every
        # sibling-stripe request got its own correct reply.
        assert set(errors) == {0, 3}
        assert results == {1: 1, 2: 2, 4: 4, 5: 5}
        # The dead stripe was evicted; its siblings survived.
        assert tcp.stripe_count(endpoint) == 2
        # And the endpoint still works.
        assert proxy.echo(99) == 99
    finally:
        tcp.close()
