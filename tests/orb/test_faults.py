"""Fault-injection transport: the DSL, determinism, and deadline-aware
latency."""

import pytest

from repro.deadline import Deadline, call_policy
from repro.errors import CommFailure, DeadlineExceeded, MarshalError
from repro.orb import InMemoryNetwork, InterfaceBuilder, create_orb, ORBIX, VISIBROKER
from repro.orb.faults import ANY, FaultyTransport

ECHO = InterfaceBuilder("Echo").operation("echo", "value").build()


class EchoServant:
    def echo(self, value):
        return value


def faulty_pair(seed=0):
    """A proxy/endpoint pair riding a FaultyTransport."""
    faulty = FaultyTransport(InMemoryNetwork(), seed=seed)
    server = create_orb(ORBIX, faulty)
    client = create_orb(VISIBROKER, faulty)
    ior = server.activate(EchoServant(), ECHO)
    return faulty, client.proxy(ior, ECHO), ior.primary.endpoint


class TestFaultDsl:
    def test_clean_transport_passes_through(self):
        faulty, proxy, __ = faulty_pair()
        assert proxy.echo("ok") == "ok"
        assert all(count == 0 for count in faulty.injected.values())

    def test_refuse_raises_commfailure(self):
        faulty, proxy, endpoint = faulty_pair()
        faulty.refuse(endpoint)
        with pytest.raises(CommFailure, match="refused"):
            proxy.echo("x")
        assert faulty.injected["refuse"] == 1
        assert endpoint in faulty.injected_endpoints["refuse"]

    def test_drop_request_and_reply_are_distinguished(self):
        faulty, proxy, endpoint = faulty_pair()
        faulty.drop_requests(endpoint)
        with pytest.raises(CommFailure, match="before delivery"):
            proxy.echo("x")
        faulty.heal(endpoint)
        faulty.drop_replies(endpoint)
        with pytest.raises(CommFailure, match="after the request"):
            proxy.echo("x")
        assert faulty.injected["drop_request"] == 1
        assert faulty.injected["drop_reply"] == 1

    def test_truncated_reply_fails_to_decode(self):
        faulty, proxy, endpoint = faulty_pair()
        faulty.truncate_replies(endpoint, keep_bytes=6)
        with pytest.raises((CommFailure, MarshalError)):
            proxy.echo("x")

    def test_corrupted_reply_fails_to_decode(self):
        faulty, proxy, endpoint = faulty_pair()
        faulty.corrupt_replies(endpoint)
        with pytest.raises((CommFailure, MarshalError)):
            proxy.echo("payload-long-enough-to-damage")

    def test_slow_then_die_window(self):
        faulty, proxy, endpoint = faulty_pair()
        faulty.slow_then_die(endpoint, calls=2, latency=0.0)
        assert proxy.echo(1) == 1
        assert proxy.echo(2) == 2
        with pytest.raises(CommFailure):
            proxy.echo(3)
        assert faulty.injected["delay"] == 2
        assert faulty.injected["refuse"] == 1

    def test_wildcard_and_endpoint_rules_compose(self):
        """An endpoint-specific rule must not suppress ANY rules."""
        faulty, proxy, endpoint = faulty_pair()
        faulty.delay(ANY, latency=0.0)
        faulty.refuse(endpoint)
        with pytest.raises(CommFailure):
            proxy.echo("x")
        assert faulty.injected["delay"] == 1
        assert faulty.injected["refuse"] == 1

    def test_heal_restores_service(self):
        faulty, proxy, endpoint = faulty_pair()
        faulty.refuse(endpoint)
        with pytest.raises(CommFailure):
            proxy.echo("x")
        faulty.heal(endpoint)
        assert proxy.echo("back") == "back"

    def test_seeded_rates_are_deterministic(self):
        outcomes = []
        for __ in range(2):
            faulty, proxy, endpoint = faulty_pair(seed=42)
            faulty.drop_replies(endpoint, rate=0.5)
            run = []
            for index in range(20):
                try:
                    proxy.echo(index)
                    run.append(True)
                except CommFailure:
                    run.append(False)
            outcomes.append(run)
        assert outcomes[0] == outcomes[1]
        assert any(outcomes[0]) and not all(outcomes[0])


class TestDeadlineAwareLatency:
    def test_injected_latency_respects_deadline(self):
        faulty, proxy, endpoint = faulty_pair()
        faulty.delay(endpoint, latency=30.0)
        with call_policy(deadline=Deadline.after(0.05)):
            with pytest.raises(DeadlineExceeded):
                proxy.echo("slow")

    def test_latency_without_deadline_just_sleeps(self):
        faulty, proxy, endpoint = faulty_pair()
        faulty.delay(endpoint, latency=0.01)
        assert proxy.echo("ok") == "ok"
        assert faulty.injected["delay"] == 1
