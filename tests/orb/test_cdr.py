"""CDR marshalling tests, including hypothesis round-trip properties."""

import datetime

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MarshalError
from repro.orb.cdr import CdrDecoder, CdrEncoder, decode_any, encode_any


class TestPrimitives:
    def test_octet(self):
        encoder = CdrEncoder()
        encoder.write_octet(0xAB)
        assert CdrDecoder(encoder.getvalue()).read_octet() == 0xAB

    def test_boolean(self):
        encoder = CdrEncoder()
        encoder.write_boolean(True)
        encoder.write_boolean(False)
        decoder = CdrDecoder(encoder.getvalue())
        assert decoder.read_boolean() is True
        assert decoder.read_boolean() is False

    def test_long_alignment_after_octet(self):
        encoder = CdrEncoder()
        encoder.write_octet(1)
        encoder.write_long(0x01020304)
        data = encoder.getvalue()
        # 1 octet + 3 padding + 4 payload
        assert len(data) == 8
        decoder = CdrDecoder(data)
        assert decoder.read_octet() == 1
        assert decoder.read_long() == 0x01020304

    def test_double_alignment(self):
        encoder = CdrEncoder()
        encoder.write_octet(1)
        encoder.write_double(1.5)
        assert len(encoder.getvalue()) == 16
        decoder = CdrDecoder(encoder.getvalue())
        decoder.read_octet()
        assert decoder.read_double() == 1.5

    def test_big_endian_layout(self):
        encoder = CdrEncoder(little_endian=False)
        encoder.write_ulong(1)
        assert encoder.getvalue() == b"\x00\x00\x00\x01"

    def test_little_endian_layout(self):
        encoder = CdrEncoder(little_endian=True)
        encoder.write_ulong(1)
        assert encoder.getvalue() == b"\x01\x00\x00\x00"

    def test_string_includes_nul(self):
        encoder = CdrEncoder()
        encoder.write_string("ab")
        data = encoder.getvalue()
        assert data[:4] == b"\x00\x00\x00\x03"  # length counts NUL
        assert data[4:7] == b"ab\x00"

    def test_string_roundtrip_unicode(self):
        encoder = CdrEncoder()
        encoder.write_string("héllo wörld")
        assert CdrDecoder(encoder.getvalue()).read_string() == "héllo wörld"

    def test_underflow_raises(self):
        with pytest.raises(MarshalError):
            CdrDecoder(b"\x00\x00").read_long()

    def test_negative_values(self):
        encoder = CdrEncoder()
        encoder.write_long(-42)
        encoder.write_longlong(-(2**40))
        decoder = CdrDecoder(encoder.getvalue())
        assert decoder.read_long() == -42
        assert decoder.read_longlong() == -(2**40)


class TestAny:
    @pytest.mark.parametrize("value", [
        None, True, False, 0, 1, -1, 2**31 - 1, -2**31, 2**40, -2**40,
        2**100, -2**100, 1.5, -0.25, "", "hello", "quoted 'str'",
        b"", b"\x00\xff", datetime.date(1999, 3, 1),
        [], [1, 2, 3], ["a", None, True], {}, {"k": 1},
        {"nested": {"list": [1, [2, {"deep": None}]]}},
    ])
    def test_roundtrip(self, value):
        assert decode_any(encode_any(value)) == value

    def test_tuple_decodes_as_list(self):
        assert decode_any(encode_any((1, 2))) == [1, 2]

    def test_both_endiannesses(self):
        value = {"x": [1.5, "s", None]}
        for little in (False, True):
            assert decode_any(encode_any(value, little), little) == value

    def test_unsupported_type_raises(self):
        with pytest.raises(MarshalError):
            encode_any(object())

    def test_non_string_struct_key_raises(self):
        with pytest.raises(MarshalError):
            encode_any({1: "x"})

    def test_unknown_tag_raises(self):
        with pytest.raises(MarshalError):
            decode_any(b"\xfa")


json_like = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-2**130, max_value=2**130),
        st.floats(allow_nan=False, allow_infinity=False),
        st.text(max_size=40),
        st.binary(max_size=40),
        st.dates(min_value=datetime.date(1, 1, 10),
                 max_value=datetime.date(9999, 12, 20)),
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(st.text(max_size=10), children, max_size=5),
    ),
    max_leaves=20)


@given(value=json_like)
@settings(max_examples=150, deadline=None)
def test_any_roundtrip_property(value):
    """Every supported value survives encode -> decode exactly."""
    assert decode_any(encode_any(value)) == value


@given(value=json_like, little=st.booleans())
@settings(max_examples=80, deadline=None)
def test_any_roundtrip_endianness_property(value, little):
    assert decode_any(encode_any(value, little), little) == value


@given(values=st.lists(json_like, max_size=6))
@settings(max_examples=60, deadline=None)
def test_sequential_values_share_stream(values):
    """Multiple values encoded back-to-back decode in order (alignment
    bookkeeping must be consistent across the whole stream)."""
    encoder = CdrEncoder()
    for value in values:
        encoder.write_any(value)
    decoder = CdrDecoder(encoder.getvalue())
    for value in values:
        assert decoder.read_any() == value
    assert decoder.remaining() == 0


# ----------------------------------------------------- zero-copy decoding --


@given(value=json_like)
@settings(max_examples=80, deadline=None)
def test_memoryview_decode_equals_bytes_decode(value):
    """Decoding a memoryview of the encoded bytes — as the event-loop
    transport does with frames sliced from its receive buffer — yields
    exactly what decoding the bytes themselves does."""
    encoded = encode_any(value)
    from_bytes = CdrDecoder(encoded).read_any()
    from_view = CdrDecoder(memoryview(encoded)).read_any()
    assert from_view == from_bytes == value


def test_memoryview_decode_accepts_offset_slices():
    """A decoder over a view into the middle of a larger buffer (a
    frame inside a coalesced recv) sees only its own bytes."""
    payload = encode_any(["abc", 42, {"k": b"\x00\xff"}])
    padded = b"\xde\xad" + payload + b"\xbe\xef"
    view = memoryview(padded)[2:2 + len(payload)]
    assert CdrDecoder(view).read_any() == ["abc", 42, {"k": b"\x00\xff"}]


def test_decoded_values_survive_buffer_release():
    """Escaping values (strings, octets) are materialised: they stay
    valid after the receive buffer's view is released."""
    encoded = encode_any({"name": "codb", "blob": b"xyz"})
    view = memoryview(bytearray(encoded))  # writable, releasable buffer
    decoded = CdrDecoder(view).read_any()
    view.release()
    assert decoded == {"name": "codb", "blob": b"xyz"}


def test_getvalue_is_cached_and_invalidated_on_append():
    """getvalue() twice in a row (the GIOP framer's pattern) returns
    the identical object; appending afterwards invalidates the cache."""
    encoder = CdrEncoder()
    encoder.write_string("hello")
    first = encoder.getvalue()
    assert encoder.getvalue() is first
    encoder.write_ulong(7)
    second = encoder.getvalue()
    assert second is not first
    assert second.startswith(first)
    decoder = CdrDecoder(second)
    assert decoder.read_string() == "hello"
    assert decoder.read_ulong() == 7


def test_getvalue_cache_preserves_length_accounting():
    encoder = CdrEncoder()
    encoder.write_ulong(1)
    assert len(encoder.getvalue()) == len(encoder) == 4
    encoder.write_double(2.5)  # 8-aligned: pads to 8 then writes 8
    assert len(encoder.getvalue()) == len(encoder) == 16
