"""Admission control: the controller, the wire protocol, and shedding
end-to-end over both transport dispatch paths."""

import socket
import threading
import time

import pytest

from repro.deadline import BACKGROUND, Deadline, call_policy
from repro.errors import CommFailure, ServerBusy
from repro.orb import (ORBIX, VISIBROKER, InMemoryNetwork, InterfaceBuilder,
                       TcpTransport, create_orb)
from repro.orb.faults import FaultyTransport
from repro.orb.giop import (DEADLINE_BUDGET_CONTEXT, TRAFFIC_CLASS_CONTEXT,
                            ReplyMessage, ReplyStatus, RequestMessage,
                            busy_reply, decode_message, encode_message,
                            peek_request_admission)
from repro.orb.overload import (SHED_BROWNOUT, SHED_DEADLINE, SHED_OVERLOAD,
                                SHED_QUEUE_FULL, AdmissionController,
                                OverloadPolicy)

ECHO = InterfaceBuilder("Echo").operation("echo", "value").build()


class EchoServant:
    def echo(self, value):
        return value


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def controller(clock, **overrides):
    defaults = dict(shed=True, queue_limit=4, background_fraction=0.5,
                    codel_target=0.05, codel_interval=0.5)
    defaults.update(overrides)
    return AdmissionController(OverloadPolicy(**defaults), clock=clock)


class TestAdmissionController:
    def test_disabled_policy_reports_disabled(self):
        admission = AdmissionController(OverloadPolicy(shed=False))
        assert not admission.enabled

    def test_admit_and_dequeue_fast_request(self):
        clock = FakeClock()
        admission = controller(clock)
        ticket, reason = admission.enqueue(budget=None,
                                           traffic_class="interactive")
        assert reason is None
        assert admission.pending == 1
        clock.advance(0.001)
        assert admission.dequeue(ticket) is None
        assert admission.pending == 0
        assert admission.snapshot()["admitted"] == 1

    def test_queue_limit_sheds_at_the_door(self):
        admission = controller(FakeClock(), queue_limit=2)
        tickets = [admission.enqueue(None, "interactive") for __ in range(2)]
        assert all(reason is None for __, reason in tickets)
        ticket, reason = admission.enqueue(None, "interactive")
        assert ticket is None and reason == SHED_QUEUE_FULL
        assert admission.snapshot()["shed_queue_full"] == 1

    def test_background_browns_out_at_the_soft_cap(self):
        admission = controller(FakeClock(), queue_limit=4,
                               background_fraction=0.5)
        for __ in range(2):
            admission.enqueue(None, "interactive")
        ticket, reason = admission.enqueue(None, BACKGROUND)
        assert ticket is None and reason == SHED_BROWNOUT
        # Interactive traffic still fits under the hard cap.
        ticket, reason = admission.enqueue(None, "interactive")
        assert reason is None

    def test_spent_budget_sheds_before_enqueue(self):
        admission = controller(FakeClock())
        ticket, reason = admission.enqueue(budget=0.0,
                                           traffic_class="interactive")
        assert ticket is None and reason == SHED_DEADLINE
        assert admission.snapshot()["requests_expired"] == 1

    def test_budget_spent_in_queue_sheds_at_dequeue(self):
        clock = FakeClock()
        admission = controller(clock)
        ticket, __ = admission.enqueue(budget=0.2,
                                       traffic_class="interactive")
        clock.advance(0.25)
        assert admission.dequeue(ticket) == SHED_DEADLINE
        assert admission.pending == 0

    def test_codel_tolerates_a_short_burst(self):
        clock = FakeClock()
        admission = controller(clock, codel_target=0.05, codel_interval=0.5)
        # Sojourn above target, but not yet for a full interval: admit.
        for __ in range(3):
            ticket, __reason = admission.enqueue(None, "interactive")
            clock.advance(0.1)
            assert admission.dequeue(ticket) is None
            clock.advance(0.1)

    def test_codel_sheds_after_a_sustained_interval(self):
        clock = FakeClock()
        admission = controller(clock, queue_limit=64,
                               codel_target=0.05, codel_interval=0.5)
        first, __ = admission.enqueue(None, "interactive")
        clock.advance(0.1)
        assert admission.dequeue(first) is None  # starts the clock
        shed = None
        for __ in range(10):
            ticket, __reason = admission.enqueue(None, "interactive")
            clock.advance(0.1)
            shed = admission.dequeue(ticket)
            if shed is not None:
                break
        assert shed == SHED_OVERLOAD
        # While dropping, background is shed even at healthy-ish ages.
        ticket, __reason = admission.enqueue(None, BACKGROUND)
        clock.advance(0.06)
        assert admission.dequeue(ticket) == SHED_BROWNOUT

    def test_codel_recovers_when_sojourn_drops(self):
        clock = FakeClock()
        admission = controller(clock, codel_target=0.05, codel_interval=0.1)
        for __ in range(3):
            ticket, __reason = admission.enqueue(None, "interactive")
            clock.advance(0.2)
            admission.dequeue(ticket)
        # A healthy (fast) dequeue resets the dropping state.
        ticket, __reason = admission.enqueue(None, "interactive")
        clock.advance(0.001)
        assert admission.dequeue(ticket) is None
        ticket, __reason = admission.enqueue(None, "interactive")
        clock.advance(0.06)
        assert admission.dequeue(ticket) is None  # clock restarted

    def test_abandon_releases_pending_once(self):
        admission = controller(FakeClock())
        ticket, __ = admission.enqueue(None, "interactive")
        assert admission.pending == 1
        admission.abandon(ticket)
        admission.abandon(ticket)  # idempotent
        assert admission.pending == 0
        # A settled (dequeued) ticket is not double-released either.
        ticket, __ = admission.enqueue(None, "interactive")
        admission.dequeue(ticket)
        admission.abandon(ticket)
        assert admission.pending == 0

    def test_dequeue_after_abandon_never_double_decrements(self):
        # Error paths may abandon unconditionally while a worker races
        # to dequeue the same ticket; whichever settles it first owns
        # the single pending-slot release.
        admission = controller(FakeClock())
        first, __ = admission.enqueue(None, "interactive")
        second, __ = admission.enqueue(None, "interactive")
        assert admission.pending == 2
        admission.abandon(first)
        admission.dequeue(first)  # already settled: no second release
        assert admission.pending == 1
        admission.abandon(second)
        assert admission.pending == 0


class TestOverloadWireProtocol:
    def test_admission_contexts_roundtrip(self):
        frame = encode_message(RequestMessage(
            request_id=7, object_key=b"key", operation="echo",
            arguments=("x",),
            service_context=((DEADLINE_BUDGET_CONTEXT, "0.250000"),
                            (TRAFFIC_CLASS_CONTEXT, BACKGROUND))))
        budget, traffic_class = peek_request_admission(frame)
        assert budget == pytest.approx(0.25)
        assert traffic_class == BACKGROUND

    def test_request_without_contexts_defaults(self):
        frame = encode_message(RequestMessage(
            request_id=7, object_key=b"key", operation="echo",
            arguments=("x",)))
        assert peek_request_admission(frame) == (None, "interactive")

    def test_non_request_frames_never_shed(self):
        assert peek_request_admission(b"garbage") == (None, "interactive")

    def test_busy_reply_roundtrip(self):
        frame = encode_message(RequestMessage(
            request_id=42, object_key=b"key", operation="echo",
            arguments=("x",)))
        shed = busy_reply(frame, "overload")
        reply = decode_message(shed)
        assert isinstance(reply, ReplyMessage)
        assert reply.status is ReplyStatus.BUSY
        assert reply.body == {"reason": "overload"}
        assert reply.request_id == 42

    def test_busy_reply_for_oneway_is_silent(self):
        frame = encode_message(RequestMessage(
            request_id=42, object_key=b"key", operation="echo",
            arguments=("x",), response_expected=False))
        assert busy_reply(frame, "overload") is None


def _always_shedding_policy():
    """codel target+interval of zero: the first dispatch arms the CoDel
    clock and every later dequeue sheds — deterministic overload."""
    return OverloadPolicy(shed=True, codel_target=0.0, codel_interval=0.0)


class TestSheddingOverTcp:
    @pytest.mark.parametrize("loop", [False, True],
                             ids=["threaded", "event-loop"])
    def test_overloaded_server_sheds_with_server_busy(self, loop):
        transport = TcpTransport(loop=loop,
                                 overload=_always_shedding_policy())
        try:
            server = create_orb(ORBIX, transport, host="127.0.0.1", port=0)
            client = create_orb(VISIBROKER, transport, host="127.0.0.1",
                                port=0)
            proxy = client.proxy(server.activate(EchoServant(), ECHO), ECHO)
            assert proxy.echo("first") == "first"  # arms the CoDel clock
            with pytest.raises(ServerBusy, match="overload"):
                proxy.echo("second")
            assert transport.metrics.requests_shed >= 1
        finally:
            transport.close()

    @pytest.mark.parametrize("loop", [False, True],
                             ids=["threaded", "event-loop"])
    def test_shedding_disabled_is_inert(self, loop):
        transport = TcpTransport(loop=loop,
                                 overload=OverloadPolicy(shed=False))
        try:
            server = create_orb(ORBIX, transport, host="127.0.0.1", port=0)
            client = create_orb(VISIBROKER, transport, host="127.0.0.1",
                                port=0)
            proxy = client.proxy(server.activate(EchoServant(), ECHO), ECHO)
            for index in range(5):
                assert proxy.echo(index) == index
            assert transport.metrics.requests_shed == 0
            assert transport.admission.snapshot()["admitted"] == 0
        finally:
            transport.close()

    def test_server_busy_is_a_comm_failure(self):
        # Failover and breaker machinery treat a shedding replica like
        # a dead one — the call moves on instead of crashing.
        assert issubclass(ServerBusy, CommFailure)

    @pytest.mark.parametrize("loop", [False, True],
                             ids=["threaded", "event-loop"])
    def test_close_drains_in_flight_dispatches(self, loop):
        """Teardown must not abandon a dispatch mid-servant (it may be
        holding journal locks): close() waits out in-flight work."""
        finished = threading.Event()

        class SlowServant:
            def echo(self, value):
                time.sleep(0.3)
                finished.set()
                return value

        transport = TcpTransport(loop=loop, pipelined=True, stripes=1)
        server = create_orb(ORBIX, transport, host="127.0.0.1", port=0)
        client = create_orb(VISIBROKER, transport, host="127.0.0.1", port=0)
        proxy = client.proxy(server.activate(SlowServant(), ECHO), ECHO)

        def fire():
            try:
                proxy.echo("x")
            except CommFailure:
                pass  # the connection died under us: that part is fine

        caller = threading.Thread(target=fire, daemon=True)
        caller.start()
        time.sleep(0.1)  # let the request reach a worker
        transport.close()
        assert finished.is_set(), \
            "transport.close() abandoned an in-flight dispatch"
        caller.join(timeout=2.0)

    def test_connection_teardown_abandons_queued_admission_tickets(self):
        """Frames still queued behind a busy worker when their
        connection dies are cancelled; each cancelled frame must hand
        its admission ticket back, or the transport-shared controller
        leaks queue capacity until everything is shed as queue-full."""
        release = threading.Event()

        class BlockingServant:
            def echo(self, value):
                release.wait(5.0)
                return value

        policy = OverloadPolicy(shed=True, queue_limit=64,
                                codel_target=10.0, codel_interval=10.0)
        transport = TcpTransport(pipelined=True, stripes=1,
                                 connection_workers=1, overload=policy)
        try:
            server = create_orb(ORBIX, transport, host="127.0.0.1", port=0)
            client = create_orb(VISIBROKER, transport, host="127.0.0.1",
                                port=0)
            proxy = client.proxy(server.activate(BlockingServant(), ECHO),
                                 ECHO)

            def fire():
                try:
                    proxy.echo("x")
                except CommFailure:
                    pass  # the connection died under us: expected

            callers = [threading.Thread(target=fire, daemon=True)
                       for __ in range(4)]
            for caller in callers:
                caller.start()
            # One frame occupies the single worker (its ticket settles
            # at pickup); the other three wait in the executor queue.
            deadline = time.monotonic() + 2.0
            while (transport.admission.snapshot()["pending"] < 3
                   and time.monotonic() < deadline):
                time.sleep(0.01)
            assert transport.admission.snapshot()["pending"] == 3
            # Kill the connection under the server (a plain close would
            # not surface until the blocked reader thread wakes): the
            # handler tears down its pool while the worker is still
            # busy, so the three queued frames get *cancelled*.
            with transport._channels_lock:
                channels = [channel for stripes
                            in transport._channels.values()
                            for channel in stripes]
            assert channels, "expected an open pipelined channel"
            for channel in channels:
                channel._sock.shutdown(socket.SHUT_RDWR)
            # Teardown runs in the handler thread: poll for the
            # cancelled frames' tickets to be abandoned.  The worker
            # stays blocked throughout, so dequeue cannot be the one
            # releasing them.
            deadline = time.monotonic() + 2.0
            while (transport.admission.snapshot()["pending"] > 0
                   and time.monotonic() < deadline):
                time.sleep(0.01)
            assert not release.is_set()
            assert transport.admission.snapshot()["pending"] == 0, \
                "cancelled dispatches leaked admission tickets"
        finally:
            release.set()
            transport.close()
        for caller in callers:
            caller.join(timeout=2.0)


class TestBusyFaultRule:
    def test_busy_rule_sheds_without_server_work(self):
        calls = []

        class CountingServant:
            def echo(self, value):
                calls.append(value)
                return value

        faulty = FaultyTransport(InMemoryNetwork(), seed=3)
        server = create_orb(ORBIX, faulty)
        client = create_orb(VISIBROKER, faulty)
        ior = server.activate(CountingServant(), ECHO)
        proxy = client.proxy(ior, ECHO)
        faulty.busy(ior.primary.endpoint)
        with pytest.raises(ServerBusy, match="injected"):
            proxy.echo("x")
        assert faulty.injected["busy"] == 1
        assert calls == []  # the servant never ran
        faulty.heal(ior.primary.endpoint)
        assert proxy.echo("x") == "x"

    def test_busy_window_with_rate_and_after(self):
        faulty = FaultyTransport(InMemoryNetwork(), seed=3)
        server = create_orb(ORBIX, faulty)
        client = create_orb(VISIBROKER, faulty)
        ior = server.activate(EchoServant(), ECHO)
        proxy = client.proxy(ior, ECHO)
        faulty.busy(ior.primary.endpoint, after=2, until=4)
        assert proxy.echo(1) == 1
        assert proxy.echo(2) == 2
        for __ in range(2):
            with pytest.raises(ServerBusy):
                proxy.echo("shed")
        assert proxy.echo(5) == 5
        assert faulty.injected["busy"] == 2
