"""Property-based pipelining conformance: reply matching under
arbitrary reorderings.

The GIOP pipeline's one load-bearing promise is *attribution*: with N
requests in flight on a shared connection and replies arriving in any
order the server finishes them, every caller gets exactly the reply
whose ``request_id`` matches its request — never a sibling's, never
none.  Hypothesis drives the reordering: it draws a per-request delay
schedule the echo servant sleeps by, so replies come back in delay
order rather than submission order, across every stripe count.
"""

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.orb import InterfaceBuilder, TcpTransport, create_orb, ORBIX
from repro.orb.giop import (LocateReplyMessage, LocateRequestMessage,
                            LocateStatus, ReplyMessage, ReplyStatus,
                            RequestMessage, encode_message, peek_reply_id,
                            peek_request)

ECHO = InterfaceBuilder("Echo").operation("echo", "value").build()

STRIPE_COUNTS = pytest.mark.parametrize(
    "stripes", [1, 2, 4], ids=["stripes1", "stripes2", "stripes4"])


class ScheduledEchoServant:
    """Echoes its argument after a per-value delay from a schedule —
    the knob hypothesis turns to force out-of-order replies."""

    def __init__(self, delays):
        self.delays = delays
        self.started = threading.Event()

    def echo(self, value):
        self.started.set()
        delay = self.delays[value % len(self.delays)]
        if delay:
            import time
            time.sleep(delay)
        return value


def run_pipelined_batch(delays, stripes, depth=32):
    """Fire ``len(delays)`` concurrent pipelined requests; returns
    ``(results, errors, metrics)``."""
    transport = TcpTransport(pipelined=True, stripes=stripes,
                             pipeline_depth=depth)
    orb = create_orb(ORBIX, transport, host="127.0.0.1", port=0)
    try:
        ior = orb.activate(ScheduledEchoServant(delays), ECHO,
                           object_name="echo")
        proxy = orb.proxy(ior, ECHO)
        count = len(delays)
        barrier = threading.Barrier(count)
        results, errors = {}, []

        def caller(index):
            barrier.wait()
            try:
                results[index] = proxy.echo(index)
            except Exception as exc:  # noqa: BLE001 - recorded for assert
                errors.append((index, exc))

        threads = [threading.Thread(target=caller, args=(index,))
                   for index in range(count)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return results, errors, transport.metrics
    finally:
        transport.close()


@STRIPE_COUNTS
@given(delays=st.lists(
    st.sampled_from([0.0, 0.001, 0.005, 0.02]), min_size=2, max_size=8))
@settings(max_examples=5, deadline=None)
def test_every_caller_gets_its_own_reply(stripes, delays):
    """Random delay schedules reorder replies arbitrarily; attribution
    must hold regardless: no cross-wiring, no lost replies."""
    results, errors, metrics = run_pipelined_batch(delays, stripes)
    assert errors == []
    assert results == {index: index for index in range(len(delays))}
    # Every request was accounted for exactly once.
    assert metrics.messages_sent == len(delays)


@STRIPE_COUNTS
def test_reordered_replies_do_not_cross_wire(stripes):
    """The adversarial schedule — first-submitted finishes last — on a
    batch deep enough that every stripe carries several requests."""
    delays = [0.05, 0.04, 0.03, 0.02, 0.01, 0.0, 0.0, 0.0]
    results, errors, metrics = run_pipelined_batch(delays, stripes)
    assert errors == []
    assert results == {index: index for index in range(len(delays))}
    assert metrics.requests_pipelined > 0
    assert metrics.max_in_flight > 1
    assert metrics.pipeline_stalls == 0


@STRIPE_COUNTS
def test_stripe_cap_is_respected(stripes):
    """Concurrent callers never open more than ``stripes`` pipelined
    connections to one endpoint."""
    delays = [0.02] * 12
    transport = TcpTransport(pipelined=True, stripes=stripes,
                             pipeline_depth=32)
    orb = create_orb(ORBIX, transport, host="127.0.0.1", port=0)
    try:
        ior = orb.activate(ScheduledEchoServant(delays), ECHO,
                           object_name="echo")
        proxy = orb.proxy(ior, ECHO)
        barrier = threading.Barrier(len(delays))

        def caller(index):
            barrier.wait()
            assert proxy.echo(index) == index

        threads = [threading.Thread(target=caller, args=(index,))
                   for index in range(len(delays))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert transport.stripe_count(orb.endpoint) <= stripes
        assert transport.pipeline_in_flight(orb.endpoint) == 0
    finally:
        transport.close()


def test_depth_cap_overflows_to_serial():
    """Requests beyond stripes x depth fall back to dedicated serial
    round-trips instead of queueing — and still all succeed."""
    delays = [0.02] * 10
    results, errors, metrics = run_pipelined_batch(delays, stripes=1,
                                                   depth=2)
    assert errors == []
    assert results == {index: index for index in range(len(delays))}
    assert metrics.pipeline_overflows > 0
    assert metrics.max_in_flight <= 2


# --------------------------------------------------------- frame peeking --


@given(request_id=st.integers(min_value=0, max_value=2**32 - 1),
       response_expected=st.booleans(),
       operation=st.text(min_size=1, max_size=20),
       little_endian=st.booleans(),
       context=st.lists(st.tuples(st.integers(0, 2**16),
                                  st.text(max_size=8)), max_size=3))
@settings(max_examples=100, deadline=None)
def test_peek_request_roundtrip(request_id, response_expected, operation,
                                little_endian, context):
    """peek_request reads back exactly the id and response flag that
    encode_message wrote, through any service context and endianness."""
    frame = encode_message(
        RequestMessage(request_id=request_id, object_key=b"key",
                       operation=operation,
                       response_expected=response_expected,
                       service_context=context),
        little_endian=little_endian)
    assert peek_request(frame) == (request_id, response_expected)
    assert peek_reply_id(frame) is None


@given(request_id=st.integers(min_value=0, max_value=2**32 - 1),
       little_endian=st.booleans(),
       body=st.one_of(st.none(), st.integers(-100, 100), st.text(max_size=16)))
@settings(max_examples=100, deadline=None)
def test_peek_reply_roundtrip(request_id, little_endian, body):
    frame = encode_message(
        ReplyMessage(request_id=request_id, status=ReplyStatus.NO_EXCEPTION,
                     body=body),
        little_endian=little_endian)
    assert peek_reply_id(frame) == request_id
    assert peek_request(frame) == (None, True)


@given(request_id=st.integers(min_value=0, max_value=2**32 - 1),
       little_endian=st.booleans())
@settings(max_examples=50, deadline=None)
def test_peek_locate_messages(request_id, little_endian):
    locate = encode_message(
        LocateRequestMessage(request_id=request_id, object_key=b"k"),
        little_endian=little_endian)
    assert peek_request(locate) == (request_id, True)
    reply = encode_message(
        LocateReplyMessage(request_id=request_id,
                           status=LocateStatus.OBJECT_HERE),
        little_endian=little_endian)
    assert peek_reply_id(reply) == request_id


@given(noise=st.binary(max_size=64))
@settings(max_examples=100, deadline=None)
def test_peek_never_raises_on_garbage(noise):
    """Arbitrary bytes — including truncated GIOP prefixes — peek as
    unattributable rather than raising."""
    request_id, response_expected = peek_request(noise)
    assert request_id is None
    assert response_expected is True
    assert peek_reply_id(noise) is None
