"""ORB core tests: activation, invocation, exceptions, naming, interop."""

import pytest

from repro.errors import (BadOperation, CommFailure, IdlError, NamingError,
                          ObjectNotExist, UnknownCoalition)
from repro.orb import (InMemoryNetwork, InterfaceBuilder, NamingClient, Orb,
                       RemoteSystemError, create_orb, get_product, ORBIX,
                       ORBIXWEB, VISIBROKER, start_naming_service)

CALC = (InterfaceBuilder("Calc")
        .operation("add", "a", "b")
        .operation("fail")
        .operation("fail_user")
        .operation("echo", "value")
        .build())


class CalcServant:
    def add(self, a, b):
        return a + b

    def fail(self):
        raise ValueError("server-side crash")

    def fail_user(self):
        raise UnknownCoalition("no coalition here")

    def echo(self, value):
        return value


@pytest.fixture()
def fabric():
    network = InMemoryNetwork()
    server = create_orb(ORBIX, network, host="server.test")
    client = create_orb(VISIBROKER, network, host="client.test")
    ior = server.activate(CalcServant(), CALC, object_name="calc")
    return network, server, client, ior


class TestInvocation:
    def test_basic_invoke(self, fabric):
        __, __, client, ior = fabric
        assert client.proxy(ior, CALC).add(2, 3) == 5

    def test_proxy_via_ior_string(self, fabric):
        __, server, client, ior = fabric
        text = server.object_to_string(ior)
        proxy = client.string_to_object(text, CALC)
        assert proxy.add(10, 5) == 15

    def test_structured_payload(self, fabric):
        __, __, client, ior = fabric
        payload = {"rows": [[1, "a"], [2, "b"]], "count": 2}
        assert client.proxy(ior, CALC).echo(payload) == payload

    def test_unknown_operation_client_checked(self, fabric):
        __, __, client, ior = fabric
        with pytest.raises(BadOperation):
            client.proxy(ior, CALC).subtract(1, 2)

    def test_unknown_operation_server_checked(self, fabric):
        __, __, client, ior = fabric
        # no client-side interface: the server must reject it
        with pytest.raises(BadOperation):
            client.proxy(ior).subtract(1, 2)

    def test_wrong_arity_rejected(self, fabric):
        __, __, client, ior = fabric
        with pytest.raises(BadOperation):
            client.proxy(ior).add(1)

    def test_system_exception_propagates(self, fabric):
        __, __, client, ior = fabric
        with pytest.raises(RemoteSystemError) as excinfo:
            client.proxy(ior, CALC).fail()
        assert excinfo.value.exception_type == "ValueError"

    def test_user_exception_revived_as_original_class(self, fabric):
        __, __, client, ior = fabric
        with pytest.raises(UnknownCoalition):
            client.proxy(ior, CALC).fail_user()

    def test_object_not_exist(self, fabric):
        __, server, client, ior = fabric
        server.deactivate(ior)
        with pytest.raises(ObjectNotExist):
            client.proxy(ior, CALC).add(1, 1)

    def test_connection_refused(self, fabric):
        network, __, client, __ = fabric
        from repro.orb import make_ior
        ghost = make_ior("IDL:x:1.0", "nowhere.test", 1, b"gone")
        with pytest.raises(CommFailure):
            client.invoke(ghost, "op", [])

    def test_locate(self, fabric):
        __, server, client, ior = fabric
        assert client.locate(ior) is True
        server.deactivate(ior)
        assert client.locate(ior) is False

    def test_request_counters(self, fabric):
        __, server, client, ior = fabric
        before_sent = client.stats.requests_sent
        before_handled = server.stats.requests_handled
        client.proxy(ior, CALC).add(1, 1)
        assert client.stats.requests_sent == before_sent + 1
        assert server.stats.requests_handled == before_handled + 1

    def test_cross_product_accounting(self, fabric):
        __, server, client, ior = fabric
        before = server.stats.cross_product_requests
        client.proxy(ior, CALC).add(1, 1)  # VisiBroker -> Orbix
        assert server.stats.cross_product_requests == before + 1

    def test_same_orb_self_call_not_cross_product(self, fabric):
        __, server, __, ior = fabric
        before = server.stats.cross_product_requests
        server.proxy(ior, CALC).add(1, 1)
        assert server.stats.cross_product_requests == before


class TestActivation:
    def test_servant_must_implement_interface(self, fabric):
        __, server, __, __ = fabric

        class Partial:
            def add(self, a, b):
                return a + b

        with pytest.raises(IdlError):
            server.activate(Partial(), CALC)

    def test_duplicate_object_name_rejected(self, fabric):
        __, server, __, __ = fabric
        from repro.errors import OrbError
        with pytest.raises(OrbError):
            server.activate(CalcServant(), CALC, object_name="calc")

    def test_auto_generated_object_names_unique(self, fabric):
        __, server, __, __ = fabric
        first = server.activate(CalcServant(), CALC)
        second = server.activate(CalcServant(), CALC)
        assert first.primary.object_key != second.primary.object_key

    def test_interface_inheritance(self, fabric):
        __, server, client, __ = fabric
        base = InterfaceBuilder("Base").operation("ping").build()
        extended = (InterfaceBuilder("Ext").operation("pong")
                    .extends(base).build())

        class Servant:
            def ping(self):
                return "ping"

            def pong(self):
                return "pong"

        ior = server.activate(Servant(), extended)
        proxy = client.proxy(ior, extended)
        assert proxy.ping() == "ping"
        assert proxy.pong() == "pong"


class TestNaming:
    def test_bind_resolve(self, fabric):
        __, server, client, ior = fabric
        __, naming = start_naming_service(server)
        naming.bind("webfindit/calc", ior)
        resolved = naming.resolve("webfindit/calc")
        assert client.proxy(resolved, CALC).add(4, 4) == 8

    def test_duplicate_bind_rejected(self, fabric):
        __, server, __, ior = fabric
        __, naming = start_naming_service(server)
        naming.bind("x", ior)
        with pytest.raises(NamingError):
            naming.bind("x", ior)
        naming.rebind("x", ior)  # rebind is fine

    def test_resolve_missing(self, fabric):
        __, server, __, __ = fabric
        __, naming = start_naming_service(server)
        with pytest.raises(NamingError):
            naming.resolve("ghost")

    def test_unbind(self, fabric):
        __, server, __, ior = fabric
        __, naming = start_naming_service(server)
        naming.bind("x", ior)
        naming.unbind("x")
        with pytest.raises(NamingError):
            naming.resolve("x")

    def test_list_names_prefix(self, fabric):
        __, server, __, ior = fabric
        __, naming = start_naming_service(server)
        naming.bind("a/1", ior)
        naming.bind("a/2", ior)
        naming.bind("b/1", ior)
        assert naming.list_names("a/") == ["a/1", "a/2"]

    def test_naming_is_remote_object(self, fabric):
        """Another ORB resolves through the naming service over GIOP."""
        network, server, client, ior = fabric
        naming_ior, naming = start_naming_service(server)
        naming.bind("calc", ior)
        remote_naming = NamingClient(client.proxy(naming_ior))
        resolved = remote_naming.resolve("calc")
        assert client.proxy(resolved, CALC).add(6, 1) == 7


class TestProducts:
    def test_trio_identities(self):
        assert ORBIX.language == "C++"
        assert ORBIXWEB.language == "Java"
        assert VISIBROKER.vendor == "Inprise"

    def test_get_product_case_insensitive(self):
        assert get_product("orbix") is ORBIX

    def test_unknown_product(self):
        from repro.errors import OrbError
        with pytest.raises(OrbError):
            get_product("CORBAplus")

    def test_three_orb_interop_matrix(self):
        """Every product pair can call each other over one IIOP fabric."""
        network = InMemoryNetwork()
        orbs = [create_orb(p, network) for p in (ORBIX, ORBIXWEB, VISIBROKER)]
        iors = {orb.product: orb.activate(CalcServant(), CALC)
                for orb in orbs}
        for caller in orbs:
            for product, ior in iors.items():
                assert caller.proxy(ior, CALC).add(1, 2) == 3
