"""Transport tests: in-memory fabric metrics and real TCP IIOP."""

import pytest

from repro.errors import CommFailure
from repro.orb import (InMemoryNetwork, InterfaceBuilder, TcpTransport,
                       create_orb, ORBIX, VISIBROKER)

ECHO = InterfaceBuilder("Echo").operation("echo", "value").build()


class EchoServant:
    def echo(self, value):
        return value


class TestInMemoryNetwork:
    def test_endpoint_allocation_unique(self):
        network = InMemoryNetwork()
        assert network.allocate_port() != network.allocate_port()

    def test_duplicate_registration_rejected(self):
        network = InMemoryNetwork()
        endpoint = ("h", 1)
        network.register(endpoint, lambda data: data)
        with pytest.raises(CommFailure):
            network.register(endpoint, lambda data: data)

    def test_send_to_unbound_endpoint(self):
        with pytest.raises(CommFailure):
            InMemoryNetwork().send(("ghost", 9), b"x")

    def test_metrics_accumulate(self):
        network = InMemoryNetwork()
        server = create_orb(ORBIX, network)
        client = create_orb(VISIBROKER, network)
        ior = server.activate(EchoServant(), ECHO)
        network.metrics.reset()
        client.proxy(ior, ECHO).echo("hello")
        assert network.metrics.messages_sent == 1
        assert network.metrics.bytes_sent > 0
        assert network.metrics.bytes_received > 0
        assert network.metrics.per_endpoint[server.endpoint] == 1

    def test_metrics_reset(self):
        network = InMemoryNetwork()
        network.register(("h", 1), lambda data: data)
        network.send(("h", 1), b"abc")
        network.metrics.reset()
        assert network.metrics.messages_sent == 0
        assert not network.metrics.per_endpoint

    def test_unregister_frees_endpoint(self):
        network = InMemoryNetwork()
        endpoint = network.register(("h", 5), lambda data: data)
        network.unregister(endpoint)
        with pytest.raises(CommFailure):
            network.send(endpoint, b"x")
        network.register(endpoint, lambda data: data)  # rebindable


class TestTcpTransport:
    def test_roundtrip_over_sockets(self):
        transport = TcpTransport()
        try:
            server = create_orb(ORBIX, transport, host="127.0.0.1", port=0)
            client = create_orb(VISIBROKER, transport, host="127.0.0.1",
                                port=0)
            ior = server.activate(EchoServant(), ECHO)
            assert ior.primary.port != 0  # OS assigned a real port
            payload = {"list": [1, 2.5, None], "s": "data"}
            assert client.proxy(ior, ECHO).echo(payload) == payload
        finally:
            transport.close()

    def test_large_payload(self):
        transport = TcpTransport()
        try:
            server = create_orb(ORBIX, transport, host="127.0.0.1", port=0)
            client = create_orb(VISIBROKER, transport, host="127.0.0.1",
                                port=0)
            ior = server.activate(EchoServant(), ECHO)
            blob = "x" * 200_000
            assert client.proxy(ior, ECHO).echo(blob) == blob
        finally:
            transport.close()

    def test_connection_refused(self):
        transport = TcpTransport(timeout=0.5)
        client = create_orb(VISIBROKER, transport, host="127.0.0.1", port=0)
        from repro.orb import make_ior
        ghost = make_ior("IDL:x:1.0", "127.0.0.1", 1, b"k")
        with pytest.raises(CommFailure):
            client.invoke(ghost, "echo", ["x"])
        transport.close()

    def test_metrics_on_tcp(self):
        transport = TcpTransport()
        try:
            server = create_orb(ORBIX, transport, host="127.0.0.1", port=0)
            client = create_orb(VISIBROKER, transport, host="127.0.0.1",
                                port=0)
            ior = server.activate(EchoServant(), ECHO)
            transport.metrics.reset()
            client.proxy(ior, ECHO).echo("x")
            assert transport.metrics.messages_sent == 1
        finally:
            transport.close()
