"""Transport tests: in-memory fabric metrics and real TCP IIOP."""

import threading

import pytest

from repro.deadline import call_policy
from repro.errors import CommFailure
from repro.orb import (InMemoryNetwork, InterfaceBuilder, TcpTransport,
                       TransportMetrics, create_orb, ORBIX, VISIBROKER)

ECHO = InterfaceBuilder("Echo").operation("echo", "value").build()


class EchoServant:
    def echo(self, value):
        return value


class TestInMemoryNetwork:
    def test_endpoint_allocation_unique(self):
        network = InMemoryNetwork()
        assert network.allocate_port() != network.allocate_port()

    def test_duplicate_registration_rejected(self):
        network = InMemoryNetwork()
        endpoint = ("h", 1)
        network.register(endpoint, lambda data: data)
        with pytest.raises(CommFailure):
            network.register(endpoint, lambda data: data)

    def test_send_to_unbound_endpoint(self):
        with pytest.raises(CommFailure):
            InMemoryNetwork().send(("ghost", 9), b"x")

    def test_metrics_accumulate(self):
        network = InMemoryNetwork()
        server = create_orb(ORBIX, network)
        client = create_orb(VISIBROKER, network)
        ior = server.activate(EchoServant(), ECHO)
        network.metrics.reset()
        client.proxy(ior, ECHO).echo("hello")
        assert network.metrics.messages_sent == 1
        assert network.metrics.bytes_sent > 0
        assert network.metrics.bytes_received > 0
        assert network.metrics.per_endpoint[server.endpoint] == 1

    def test_metrics_reset(self):
        network = InMemoryNetwork()
        network.register(("h", 1), lambda data: data)
        network.send(("h", 1), b"abc")
        network.metrics.reset()
        assert network.metrics.messages_sent == 0
        assert not network.metrics.per_endpoint

    def test_unregister_frees_endpoint(self):
        network = InMemoryNetwork()
        endpoint = network.register(("h", 5), lambda data: data)
        network.unregister(endpoint)
        with pytest.raises(CommFailure):
            network.send(endpoint, b"x")
        network.register(endpoint, lambda data: data)  # rebindable


class TestTcpTransport:
    def test_roundtrip_over_sockets(self):
        transport = TcpTransport()
        try:
            server = create_orb(ORBIX, transport, host="127.0.0.1", port=0)
            client = create_orb(VISIBROKER, transport, host="127.0.0.1",
                                port=0)
            ior = server.activate(EchoServant(), ECHO)
            assert ior.primary.port != 0  # OS assigned a real port
            payload = {"list": [1, 2.5, None], "s": "data"}
            assert client.proxy(ior, ECHO).echo(payload) == payload
        finally:
            transport.close()

    def test_large_payload(self):
        transport = TcpTransport()
        try:
            server = create_orb(ORBIX, transport, host="127.0.0.1", port=0)
            client = create_orb(VISIBROKER, transport, host="127.0.0.1",
                                port=0)
            ior = server.activate(EchoServant(), ECHO)
            blob = "x" * 200_000
            assert client.proxy(ior, ECHO).echo(blob) == blob
        finally:
            transport.close()

    def test_connection_refused(self):
        transport = TcpTransport(timeout=0.5)
        client = create_orb(VISIBROKER, transport, host="127.0.0.1", port=0)
        from repro.orb import make_ior
        ghost = make_ior("IDL:x:1.0", "127.0.0.1", 1, b"k")
        with pytest.raises(CommFailure):
            client.invoke(ghost, "echo", ["x"])
        transport.close()

    def test_metrics_on_tcp(self):
        transport = TcpTransport()
        try:
            server = create_orb(ORBIX, transport, host="127.0.0.1", port=0)
            client = create_orb(VISIBROKER, transport, host="127.0.0.1",
                                port=0)
            ior = server.activate(EchoServant(), ECHO)
            transport.metrics.reset()
            client.proxy(ior, ECHO).echo("x")
            assert transport.metrics.messages_sent == 1
        finally:
            transport.close()


class TestTransportMetricsThreadSafety:
    def test_concurrent_records_lose_nothing(self):
        """Regression: unlocked `+=` on the counters and the
        per_endpoint dict dropped increments when many client threads
        hammered one endpoint through ThreadingTCPServer."""
        metrics = TransportMetrics()
        endpoint = ("h", 1)
        threads_n, per_thread = 16, 2000

        def hammer():
            for __ in range(per_thread):
                metrics.record(endpoint, 3, 5)

        threads = [threading.Thread(target=hammer)
                   for __ in range(threads_n)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        expected = threads_n * per_thread
        assert metrics.messages_sent == expected
        assert metrics.bytes_sent == 3 * expected
        assert metrics.bytes_received == 5 * expected
        assert metrics.per_endpoint[endpoint] == expected

    def test_concurrent_connection_records(self):
        metrics = TransportMetrics()

        def hammer(reused: bool):
            for __ in range(1000):
                metrics.record_connection(reused)

        threads = [threading.Thread(target=hammer, args=(index % 2 == 0,))
                   for index in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert metrics.connections_reused == 4000
        assert metrics.connections_opened == 4000
        metrics.reset()
        assert metrics.connections_reused == 0
        assert metrics.connections_opened == 0

    def test_record_during_reset_stays_consistent(self):
        metrics = TransportMetrics()
        stop = threading.Event()

        def recorder():
            while not stop.is_set():
                metrics.record(("h", 2), 1, 1)

        def resetter():
            for __ in range(200):
                metrics.reset()

        threads = [threading.Thread(target=recorder) for __ in range(4)]
        for thread in threads:
            thread.start()
        resetter()
        stop.set()
        for thread in threads:
            thread.join()
        # After a final reset the counters must be exactly coherent.
        metrics.reset()
        assert metrics.messages_sent == 0
        assert not metrics.per_endpoint


class TestInMemoryNetworkConcurrency:
    def test_send_during_register_churn(self):
        """send() must read the handler table under the lock: a torn
        view during concurrent register/unregister crashed discovery."""
        network = InMemoryNetwork()
        stable = network.register(("stable", 1), lambda data: data)
        errors: list[Exception] = []
        stop = threading.Event()

        def churn(thread_id):
            for index in range(300):
                endpoint = (f"churn{thread_id}", index)
                try:
                    network.register(endpoint, lambda data: data)
                    network.unregister(endpoint)
                except Exception as exc:  # noqa: BLE001
                    errors.append(exc)

        def sender():
            while not stop.is_set():
                try:
                    assert network.send(stable, b"payload") == b"payload"
                except Exception as exc:  # noqa: BLE001
                    errors.append(exc)

        churners = [threading.Thread(target=churn, args=(thread_id,))
                    for thread_id in range(3)]
        senders = [threading.Thread(target=sender) for __ in range(3)]
        for thread in senders + churners:
            thread.start()
        for thread in churners:
            thread.join()
        stop.set()
        for thread in senders:
            thread.join()
        assert not errors


class TestConnectionPool:
    def _echo_pair(self, transport):
        server = create_orb(ORBIX, transport, host="127.0.0.1", port=0)
        client = create_orb(VISIBROKER, transport, host="127.0.0.1", port=0)
        ior = server.activate(EchoServant(), ECHO)
        return client.proxy(ior, ECHO), ior

    def test_pooled_connections_are_reused(self):
        transport = TcpTransport(pooled=True)
        try:
            proxy, ior = self._echo_pair(transport)
            transport.metrics.reset()
            for index in range(10):
                assert proxy.echo(index) == index
            # First call opens, the other nine ride the same socket.
            assert transport.metrics.connections_opened == 1
            assert transport.metrics.connections_reused == 9
            assert transport.idle_connections(ior.primary.endpoint) == 1
        finally:
            transport.close()

    def test_per_call_mode_opens_every_time(self):
        transport = TcpTransport(pooled=False)
        try:
            proxy, ior = self._echo_pair(transport)
            transport.metrics.reset()
            for index in range(5):
                assert proxy.echo(index) == index
            assert transport.metrics.connections_opened == 5
            assert transport.metrics.connections_reused == 0
            assert transport.idle_connections() == 0
        finally:
            transport.close()

    def test_stale_pooled_connection_retried(self):
        """A pooled connection the server has dropped must be replaced
        transparently — the request is retried on a fresh socket, but
        only when the caller vouches the request is idempotent."""
        transport = TcpTransport(pooled=True)
        try:
            proxy, ior = self._echo_pair(transport)
            assert proxy.echo("warm") == "warm"
            endpoint = ior.primary.endpoint
            # Sever the idle connection behind the pool's back.
            stale = transport._pool.checkout(endpoint)
            assert stale is not None
            stale.close()
            transport._pool.checkin(endpoint, stale)
            with call_policy(idempotent=True):
                assert proxy.echo("after-drop") == "after-drop"
        finally:
            transport.close()

    def test_stale_pooled_connection_not_retried_when_non_idempotent(self):
        """Without the idempotence vouch, a failure on a pooled socket
        surfaces instead of blindly resending — the first copy of the
        request may already have been applied server-side."""
        transport = TcpTransport(pooled=True)
        try:
            proxy, ior = self._echo_pair(transport)
            assert proxy.echo("warm") == "warm"
            endpoint = ior.primary.endpoint
            stale = transport._pool.checkout(endpoint)
            assert stale is not None
            stale.close()
            transport._pool.checkin(endpoint, stale)
            with pytest.raises(CommFailure,
                               match="non-idempotent"):
                proxy.echo("after-drop")
            # The stale socket is gone; the next call gets a fresh one
            # and succeeds regardless of idempotence.
            assert proxy.echo("recovered") == "recovered"
        finally:
            transport.close()

    def test_unregister_discards_idle_connections(self):
        transport = TcpTransport(pooled=True)
        try:
            proxy, ior = self._echo_pair(transport)
            assert proxy.echo("x") == "x"
            endpoint = ior.primary.endpoint
            assert transport.idle_connections(endpoint) == 1
            transport.unregister(endpoint)
            assert transport.idle_connections(endpoint) == 0
            with pytest.raises(CommFailure):
                proxy.echo("gone")
        finally:
            transport.close()

    def test_pool_bounded(self):
        """Concurrent checkouts beyond pool_size still work; only
        pool_size spares are retained afterwards."""
        transport = TcpTransport(pooled=True, pool_size=2)
        try:
            proxy, ior = self._echo_pair(transport)
            barrier = threading.Barrier(6)
            errors: list[Exception] = []

            def call(index):
                try:
                    barrier.wait(timeout=5)
                    assert proxy.echo(index) == index
                except Exception as exc:  # noqa: BLE001
                    errors.append(exc)

            threads = [threading.Thread(target=call, args=(index,))
                       for index in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not errors
            assert transport.idle_connections(ior.primary.endpoint) <= 2
        finally:
            transport.close()

    def test_keep_alive_sequences_many_frames(self):
        """One connection carries many request/reply frames in order
        (the keep-alive server loop must not desynchronise framing)."""
        transport = TcpTransport(pooled=True)
        try:
            proxy, __ = self._echo_pair(transport)
            payloads = [{"n": index, "blob": "x" * (index * 37 % 400)}
                        for index in range(40)]
            for payload in payloads:
                assert proxy.echo(payload) == payload
            assert transport.metrics.connections_opened <= 1
        finally:
            transport.close()


class SlowEchoServant:
    def __init__(self, delay):
        self.delay = delay

    def echo(self, value):
        import time
        time.sleep(self.delay)
        return value


class TestPipelinedStripes:
    """Striping semantics that must hold without fault injection (the
    chaos suite covers fault attribution)."""

    def _slow_echo_pair(self, transport, delay=0.15):
        server = create_orb(ORBIX, transport, host="127.0.0.1", port=0)
        client = create_orb(VISIBROKER, transport, host="127.0.0.1", port=0)
        ior = server.activate(SlowEchoServant(delay), ECHO)
        return client.proxy(ior, ECHO), ior

    def _build_stripes(self, transport, proxy, endpoint, count):
        """Staggered concurrent calls open one stripe each."""
        errors: list[Exception] = []

        def call(index):
            try:
                assert proxy.echo(index) == index
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        import time
        threads = [threading.Thread(target=call, args=(index,))
                   for index in range(count)]
        for thread in threads:
            thread.start()
            time.sleep(0.03)
        for thread in threads:
            thread.join()
        assert not errors
        assert transport.stripe_count(endpoint) == count

    def test_stale_stripe_does_not_evict_healthy_siblings(self):
        """Regression (ISSUE 5): discarding a dead stripe must not
        discard the endpoint's healthy sibling stripes — the serial
        pool's discard-the-whole-endpoint behaviour would sever
        every other caller's connection."""
        transport = TcpTransport(pipelined=True, stripes=3)
        try:
            proxy, ior = self._slow_echo_pair(transport)
            endpoint = ior.primary.endpoint
            self._build_stripes(transport, proxy, endpoint, 3)
            with transport._channels_lock:
                stale, *siblings = transport._channels[endpoint]
            # The first stripe goes stale (peer dropped it).
            stale.close()
            with call_policy(idempotent=True):
                assert proxy.echo("after") == "after"
            assert transport.stripe_count(endpoint) == 2
            with transport._channels_lock:
                remaining = list(transport._channels[endpoint])
            assert stale not in remaining
            for sibling in siblings:
                assert sibling in remaining
                assert not sibling.dead
        finally:
            transport.close()

    def test_unregister_closes_endpoint_stripes(self):
        transport = TcpTransport(pipelined=True, stripes=2)
        try:
            proxy, ior = self._slow_echo_pair(transport, delay=0.0)
            endpoint = ior.primary.endpoint
            assert proxy.echo("warm") == "warm"
            assert transport.stripe_count(endpoint) == 1
            transport.unregister(endpoint)
            assert transport.stripe_count(endpoint) == 0
        finally:
            transport.close()

    def test_serial_send_unaffected_by_pipelined_flag_default(self):
        """pipelined=False keeps the exact pooled-serial behaviour the
        earlier counters tests pin down."""
        transport = TcpTransport(pooled=True)
        assert transport.pipelined is False
        assert transport.stripe_count(("nowhere", 1)) == 0
        transport.close()
