"""Portable-interceptor-style request hooks."""

import pytest

from repro.errors import UnknownCoalition
from repro.orb import (InMemoryNetwork, InterfaceBuilder, create_orb, ORBIX,
                       VISIBROKER)
from repro.orb.giop import ReplyStatus

ECHO = (InterfaceBuilder("Echo").operation("echo", "value")
        .operation("boom").build())


class EchoServant:
    def echo(self, value):
        return value

    def boom(self):
        raise UnknownCoalition("nope")


@pytest.fixture()
def fabric():
    network = InMemoryNetwork()
    server = create_orb(ORBIX, network)
    client = create_orb(VISIBROKER, network)
    ior = server.activate(EchoServant(), ECHO)
    return server, client, ior


class TestInterceptors:
    def test_client_interceptor_sees_outgoing_request(self, fabric):
        __, client, ior = fabric
        seen = []
        client.add_client_interceptor(
            lambda request: seen.append((request.operation,
                                         list(request.arguments))))
        client.proxy(ior, ECHO).echo("hi")
        assert seen == [("echo", ["hi"])]

    def test_server_interceptor_sees_request_and_reply(self, fabric):
        server, client, ior = fabric
        seen = []
        server.add_server_interceptor(
            lambda request, reply: seen.append((request.operation,
                                                reply.status)))
        client.proxy(ior, ECHO).echo("hi")
        assert seen == [("echo", ReplyStatus.NO_EXCEPTION)]

    def test_server_interceptor_sees_user_exception(self, fabric):
        server, client, ior = fabric
        statuses = []
        server.add_server_interceptor(
            lambda request, reply: statuses.append(reply.status))
        with pytest.raises(UnknownCoalition):
            client.proxy(ior, ECHO).boom()
        assert statuses == [ReplyStatus.USER_EXCEPTION]

    def test_multiple_interceptors_run_in_order(self, fabric):
        __, client, ior = fabric
        order = []
        client.add_client_interceptor(lambda request: order.append("first"))
        client.add_client_interceptor(lambda request: order.append("second"))
        client.proxy(ior, ECHO).echo("x")
        assert order == ["first", "second"]

    def test_interceptor_can_append_service_context(self, fabric):
        """The classic use: tunnelling extra context with the request."""
        server, client, ior = fabric
        client.add_client_interceptor(
            lambda request: request.service_context.append((0x7777, "trace-1")))
        contexts = []
        server.add_server_interceptor(
            lambda request, reply: contexts.append(
                dict(request.service_context).get(0x7777)))
        client.proxy(ior, ECHO).echo("x")
        assert contexts == ["trace-1"]

    def test_interceptor_builds_a_call_log(self, fabric):
        """A tracing interceptor across a small session."""
        server, client, ior = fabric
        log = []
        server.add_server_interceptor(
            lambda request, reply: log.append(request.operation))
        proxy = client.proxy(ior, ECHO)
        proxy.echo(1)
        proxy.echo(2)
        with pytest.raises(UnknownCoalition):
            proxy.boom()
        assert log == ["echo", "echo", "boom"]
