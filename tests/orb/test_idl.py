"""Interface-definition (IDL) layer tests."""

import pytest

from repro.errors import BadOperation, IdlError
from repro.orb.idl import (InterfaceBuilder, InterfaceRepository,
                           OperationDef, ParameterDef)


class TestBuilder:
    def test_repository_id_format(self):
        interface = InterfaceBuilder("CoDatabase", module="webfindit",
                                     version="1.0").build()
        assert interface.repository_id == "IDL:webfindit/CoDatabase:1.0"

    def test_operations_registered(self):
        interface = (InterfaceBuilder("X")
                     .operation("a", "p1", "p2")
                     .operation("b", oneway=True)
                     .build())
        assert interface.operation("a").arity == 2
        assert interface.operation("b").oneway

    def test_duplicate_operation_rejected(self):
        with pytest.raises(IdlError):
            InterfaceBuilder("X").operation("a").operation("a")

    def test_invalid_name_rejected(self):
        with pytest.raises(IdlError):
            InterfaceBuilder("1bad")

    def test_unknown_operation_raises(self):
        interface = InterfaceBuilder("X").operation("a").build()
        with pytest.raises(BadOperation):
            interface.operation("b")


class TestInheritance:
    def test_all_operations_merges(self):
        base = InterfaceBuilder("Base").operation("ping").build()
        child = (InterfaceBuilder("Child").operation("pong")
                 .extends(base).build())
        assert set(child.all_operations()) == {"ping", "pong"}

    def test_own_definition_wins(self):
        base = InterfaceBuilder("Base").operation("op", "a").build()
        child = (InterfaceBuilder("Child").operation("op", "a", "b")
                 .extends(base).build())
        assert child.operation("op").arity == 2

    def test_operation_found_through_bases(self):
        base = InterfaceBuilder("Base").operation("ping").build()
        child = InterfaceBuilder("Child").extends(base).build()
        assert child.operation("ping").name == "ping"


class TestServantValidation:
    def test_complete_servant_accepted(self):
        interface = InterfaceBuilder("X").operation("go").build()

        class Ok:
            def go(self):
                return 1

        interface.validate_servant(Ok())

    def test_missing_method_rejected(self):
        interface = InterfaceBuilder("X").operation("go").build()
        with pytest.raises(IdlError) as excinfo:
            interface.validate_servant(object())
        assert "go" in str(excinfo.value)

    def test_non_callable_attribute_rejected(self):
        interface = InterfaceBuilder("X").operation("go").build()

        class Bad:
            go = 42

        with pytest.raises(IdlError):
            interface.validate_servant(Bad())


class TestRepository:
    def test_register_and_lookup(self):
        repository = InterfaceRepository()
        interface = InterfaceBuilder("X").build()
        repository.register(interface)
        assert repository.lookup(interface.repository_id) is interface
        assert interface.repository_id in repository
        assert len(repository) == 1

    def test_same_interface_idempotent(self):
        repository = InterfaceRepository()
        interface = InterfaceBuilder("X").build()
        repository.register(interface)
        repository.register(interface)
        assert len(repository) == 1

    def test_conflicting_registration_rejected(self):
        repository = InterfaceRepository()
        repository.register(InterfaceBuilder("X").build())
        with pytest.raises(IdlError):
            repository.register(InterfaceBuilder("X").build())

    def test_lookup_unknown(self):
        with pytest.raises(IdlError):
            InterfaceRepository().lookup("IDL:ghost:1.0")
