"""Event-loop transport mode: loop mechanics, batching, auto
pipelining, and metrics safety under mixed loop/worker access."""

import socket
import threading

import pytest

from repro.orb import InterfaceBuilder, TcpTransport, create_orb, ORBIX
from repro.orb.transport import TransportMetrics, _EventLoop, _LoopStream

ECHO = InterfaceBuilder("Echo").operation("echo", "value").build()


class EchoServant:
    def echo(self, value):
        return value


def _echo_deployment(**transport_kwargs):
    transport = TcpTransport(loop=True, **transport_kwargs)
    orb = create_orb(ORBIX, transport, host="127.0.0.1", port=0)
    ior = orb.activate(EchoServant(), ECHO, object_name="echo")
    return transport, orb, orb.proxy(ior, ECHO)


# ------------------------------------------------------------ round trips --


def test_loop_serial_roundtrip():
    transport, orb, proxy = _echo_deployment()
    try:
        assert proxy.echo("hello") == "hello"
        assert transport.metrics.messages_sent == 1
    finally:
        transport.close()


def test_loop_large_payload_crosses_recv_and_send_boundaries():
    """A payload much larger than one recv (and than the kernel's
    socket buffers) forces multi-chunk reassembly on the read side and
    partial, writability-driven sends on the write side."""
    transport, orb, proxy = _echo_deployment()
    try:
        blob = bytes(range(256)) * 8192  # 2 MiB
        assert proxy.echo(blob) == blob
    finally:
        transport.close()


def test_loop_pipelined_concurrent_callers():
    transport, orb, proxy = _echo_deployment(pipelined=True, stripes=2)
    try:
        barrier = threading.Barrier(12)
        results = {}

        def caller(index):
            barrier.wait()
            results[index] = proxy.echo(index)

        threads = [threading.Thread(target=caller, args=(index,))
                   for index in range(12)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert results == {index: index for index in range(12)}
        assert transport.metrics.requests_pipelined > 0
    finally:
        transport.close()


def test_loop_server_thread_count_is_bounded():
    """The acceptance bound: however many clients connect, the server
    side is one loop thread plus at most ``loop_workers`` workers."""
    transport, orb, proxy = _echo_deployment(pipelined=True, stripes=4,
                                             loop_workers=6)
    try:
        barrier = threading.Barrier(32)

        def caller(index):
            barrier.wait()
            assert proxy.echo(index) == index

        threads = [threading.Thread(target=caller, args=(index,))
                   for index in range(32)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert transport.server_thread_count() <= 1 + 6
    finally:
        transport.close()


def test_unregister_closes_loop_listener():
    transport, orb, proxy = _echo_deployment()
    endpoint = orb.endpoint
    try:
        assert proxy.echo(1) == 1
        transport.unregister(endpoint)
        with pytest.raises(ConnectionError):
            socket.create_connection(endpoint, timeout=0.5)
    finally:
        transport.close()


def test_env_variable_flips_default_mode(monkeypatch):
    monkeypatch.setenv("REPRO_TRANSPORT_LOOP", "1")
    assert TcpTransport().loop_enabled
    monkeypatch.setenv("REPRO_TRANSPORT_LOOP", "0")
    assert not TcpTransport().loop_enabled
    monkeypatch.delenv("REPRO_TRANSPORT_LOOP")
    assert not TcpTransport().loop_enabled
    assert TcpTransport(loop=True).loop_enabled


# ---------------------------------------------------------- frame batching --


def test_flush_coalesces_queued_frames_into_one_send():
    """Deterministic batching check at the stream level: three frames
    enqueued before one flush leave as a single send."""
    metrics = TransportMetrics()
    loop = _EventLoop(batch_flush=64 * 1024, metrics=metrics)
    left, right = socket.socketpair()
    left.setblocking(False)
    try:
        stream = _LoopStream(loop, left)
        frames = [b"AAAA", b"BBBBBB", b"CC"]

        def enqueue_and_flush():
            for frame in frames:
                stream.enqueue(frame)
            stream.flush()

        loop.call_soon_sync(enqueue_and_flush)
        right.settimeout(2.0)
        assert right.recv(4096) == b"".join(frames)
        snapshot = metrics.snapshot()
        assert snapshot["batch_flushes"] == 1
        assert snapshot["frames_batched"] == 2
    finally:
        loop.stop()
        right.close()


def test_batch_flush_cap_limits_one_batch():
    """A flush stops coalescing at ``batch_flush`` bytes; the rest
    goes in subsequent sends (still all delivered, in order)."""
    metrics = TransportMetrics()
    loop = _EventLoop(batch_flush=8, metrics=metrics)
    left, right = socket.socketpair()
    left.setblocking(False)
    try:
        stream = _LoopStream(loop, left)

        def enqueue_and_flush():
            for frame in (b"12345", b"67890", b"abcde"):
                stream.enqueue(frame)
            stream.flush()

        loop.call_soon_sync(enqueue_and_flush)
        right.settimeout(2.0)
        received = b""
        while len(received) < 15:
            received += right.recv(4096)
        assert received == b"1234567890abcde"
        # First batch took two frames (5 + 5 >= 8), the third went solo.
        assert metrics.snapshot()["frames_batched"] == 1
    finally:
        loop.stop()
        right.close()


def test_call_later_fires_in_order():
    loop = _EventLoop(batch_flush=1, metrics=TransportMetrics())
    try:
        fired = []
        done = threading.Event()
        loop.call_later(0.03, lambda: (fired.append("late"), done.set()))
        loop.call_later(0.01, fired.append, "early")
        loop.call_soon(fired.append, "now")
        assert done.wait(2.0)
        assert fired == ["now", "early", "late"]
    finally:
        loop.stop()


# --------------------------------------------------------- auto pipelining --


class BarrierEchoServant:
    """Echoes only once *parties* calls are in the servant at the same
    time — proof of genuinely concurrent in-flight demand."""

    def __init__(self, parties):
        self.barrier = threading.Barrier(parties)

    def echo(self, value):
        self.barrier.wait(timeout=10.0)
        return value


@pytest.mark.parametrize("loop", [False, True],
                         ids=["threaded", "event-loop"])
def test_auto_mode_flips_serial_to_striped_deterministically(loop):
    """Two calls forced to overlap (the servant's barrier needs both in
    flight to release either) promote the endpoint exactly once; a lone
    serial call beforehand does not."""
    transport = TcpTransport(loop=loop, pipelined="auto")
    orb = create_orb(ORBIX, transport, host="127.0.0.1", port=0)
    try:
        servant = BarrierEchoServant(parties=2)
        ior = orb.activate(servant, ECHO, object_name="echo")
        proxy = orb.proxy(ior, ECHO)
        endpoint = orb.endpoint

        # A lone call never promotes: demand was never concurrent.
        servant.barrier = threading.Barrier(1)
        assert proxy.echo(0) == 0
        assert not transport.pipelining_active(endpoint)
        assert transport.metrics.auto_promotions == 0

        # Two overlapping calls: neither can finish until both are in
        # flight, so the second send observes depth 2 and promotes.
        servant.barrier = threading.Barrier(2)
        results = {}

        def caller(index):
            results[index] = proxy.echo(index)

        threads = [threading.Thread(target=caller, args=(index,))
                   for index in (1, 2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert results == {1: 1, 2: 2}
        assert transport.pipelining_active(endpoint)
        assert transport.metrics.auto_promotions == 1

        # Promotion is permanent and auto defaults to 4-way striping.
        assert transport.stripes == 4
        servant.barrier = threading.Barrier(1)
        assert proxy.echo(3) == 3
        assert transport.metrics.auto_promotions == 1
    finally:
        transport.close()


def test_auto_mode_rejects_bad_values():
    with pytest.raises(ValueError):
        TcpTransport(pipelined="always")


# ------------------------------------------------------------ metrics safety --


def test_metrics_safe_under_mixed_loop_and_worker_access():
    """Satellite: every counter path hammered from many threads at
    once (as the loop flushes while workers record dispatches) loses no
    increments and snapshots never expose torn multi-field reads."""
    metrics = TransportMetrics()
    endpoint = ("127.0.0.1", 9999)
    threads_count, iterations = 8, 500
    start = threading.Barrier(threads_count + 1)
    torn = []

    def hammer(seed):
        start.wait()
        for index in range(iterations):
            metrics.record(endpoint, 100, 50)
            metrics.record_pipeline(depth=(seed + index) % 7)
            metrics.record_stall()
            metrics.record_overflow()
            metrics.record_batch(frames=3)
            metrics.record_connection(reused=index % 2 == 0)
            metrics.record_auto_promotion()

    def reader():
        start.wait()
        for __ in range(iterations):
            snapshot = metrics.snapshot()
            # Invariant across all paths: bytes follow messages 100/50.
            if snapshot["bytes_sent"] != snapshot["messages_sent"] * 100 \
                    or snapshot["bytes_received"] != \
                    snapshot["messages_sent"] * 50:
                torn.append(snapshot)

    workers = [threading.Thread(target=hammer, args=(seed,))
               for seed in range(threads_count)]
    observer = threading.Thread(target=reader)
    for thread in [*workers, observer]:
        thread.start()
    for thread in [*workers, observer]:
        thread.join()

    assert torn == []
    total = threads_count * iterations
    snapshot = metrics.snapshot()
    assert snapshot["messages_sent"] == total
    assert snapshot["bytes_sent"] == total * 100
    assert snapshot["pipeline_stalls"] == total
    assert snapshot["pipeline_overflows"] == total
    assert snapshot["batch_flushes"] == total
    assert snapshot["frames_batched"] == total * 2
    assert snapshot["auto_promotions"] == total
    assert snapshot["connections_opened"] \
        + snapshot["connections_reused"] == total
    assert metrics.per_endpoint[endpoint] == total
