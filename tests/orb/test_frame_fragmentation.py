"""Frame reassembly under arbitrary chunking.

TCP is a byte stream: one ``recv`` can return a single byte of a
header, three and a half frames, or anything between.  The
:class:`~repro.orb.transport.FrameBuffer` both transport modes slice
frames from must therefore be insensitive to chunk boundaries — no
frame cross-wired, lost, duplicated, or corrupted, however the stream
is split.  Hypothesis draws the splits: from a 1-byte dribble through
jumbo coalesced writes, including boundaries that land mid-header and
mid-body.
"""

import socket
import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MarshalError
from repro.orb import InterfaceBuilder, TcpTransport, create_orb, ORBIX
from repro.orb.giop import (ReplyMessage, ReplyStatus, RequestMessage,
                            encode_message, peek_reply_id)
from repro.orb.transport import FrameBuffer, read_giop_frame

ECHO = InterfaceBuilder("Echo").operation("echo", "value").build()


def _frames(ids, little_endian=False):
    """A mixed request/reply stream with identifiable frames."""
    out = []
    for index, request_id in enumerate(ids):
        if index % 2 == 0:
            message = RequestMessage(request_id=request_id,
                                     object_key=b"echo",
                                     operation="echo",
                                     arguments=[request_id])
        else:
            message = ReplyMessage(request_id=request_id,
                                   status=ReplyStatus.NO_EXCEPTION,
                                   body=request_id)
        out.append(encode_message(message, little_endian=little_endian))
    return out


def _split(stream, cuts):
    """Split *stream* at the (deduplicated, sorted) cut offsets."""
    bounds = sorted({min(cut, len(stream)) for cut in cuts})
    chunks, start = [], 0
    for bound in bounds:
        if bound > start:
            chunks.append(stream[start:bound])
            start = bound
    chunks.append(stream[start:])
    return [chunk for chunk in chunks if chunk]


@given(ids=st.lists(st.integers(min_value=0, max_value=2**32 - 1),
                    min_size=1, max_size=8, unique=True),
       cuts=st.lists(st.integers(min_value=0, max_value=4096), max_size=40),
       little_endian=st.booleans())
@settings(max_examples=120, deadline=None)
def test_any_chunking_yields_exactly_the_original_frames(
        ids, cuts, little_endian):
    """Feed the concatenated stream in arbitrary pieces: the buffer
    must hand back exactly the original frames, in order, bit-equal."""
    frames = _frames(ids, little_endian)
    stream = b"".join(frames)
    buffer = FrameBuffer()
    recovered = []
    for chunk in _split(stream, cuts):
        buffer.feed(chunk)
        while True:
            frame = buffer.next_frame()
            if frame is None:
                break
            recovered.append(bytes(frame))
    assert recovered == frames
    assert len(buffer) == 0


@given(ids=st.lists(st.integers(min_value=0, max_value=2**32 - 1),
                    min_size=1, max_size=4, unique=True))
@settings(max_examples=25, deadline=None)
def test_one_byte_dribble(ids):
    """The pathological split: every chunk is a single byte."""
    frames = _frames(ids)
    buffer = FrameBuffer()
    recovered = []
    for byte_index in b"".join(frames):
        buffer.feed(bytes([byte_index]))
        frame = buffer.next_frame()
        if frame is not None:
            recovered.append(bytes(frame))
    assert recovered == frames


def test_single_chunk_frame_is_returned_without_copy():
    """The common case — peer batched exactly one frame per send —
    comes back as the fed object itself, not a copy."""
    [frame] = _frames([7])
    buffer = FrameBuffer()
    buffer.feed(frame)
    assert buffer.next_frame() is frame


def test_coalesced_chunk_yields_views_not_copies():
    """Frames inside one jumbo chunk come back as zero-copy views."""
    frames = _frames([1, 2, 3, 4])
    buffer = FrameBuffer()
    buffer.feed(b"".join(frames))
    for expected in frames:
        got = buffer.next_frame()
        assert isinstance(got, memoryview)
        assert bytes(got) == expected
    assert buffer.next_frame() is None


@given(noise=st.binary(min_size=12, max_size=64).filter(
    lambda raw: raw[:4] != b"GIOP"))
@settings(max_examples=60, deadline=None)
def test_non_giop_stream_poisons_instead_of_misframing(noise):
    """A desynchronised stream raises (connection must drop) rather
    than slicing garbage frames forever."""
    buffer = FrameBuffer()
    buffer.feed(noise)
    with pytest.raises(MarshalError):
        buffer.next_frame()


@pytest.mark.parametrize("loop", [False, True],
                         ids=["threaded", "event-loop"])
def test_server_survives_dribbled_request_on_the_wire(loop):
    """End-to-end: a request trickled onto a live server socket a few
    bytes at a time still gets exactly its reply."""

    class Echo:
        def echo(self, value):
            return value

    transport = TcpTransport(loop=loop)
    orb = create_orb(ORBIX, transport, host="127.0.0.1", port=0)
    try:
        orb.activate(Echo(), ECHO, object_name="echo")
        request = encode_message(RequestMessage(
            request_id=99, object_key=b"obj:echo", operation="echo",
            arguments=["dribble"]))
        with socket.create_connection(orb.endpoint, timeout=5.0) as sock:
            for start in range(0, len(request), 3):
                sock.sendall(request[start:start + 3])
                time.sleep(0.001)
            sock.settimeout(5.0)
            reply = read_giop_frame(sock)
        assert peek_reply_id(reply) == 99
    finally:
        transport.close()


@pytest.mark.parametrize("loop", [False, True],
                         ids=["threaded", "event-loop"])
def test_interleaved_dribblers_are_not_cross_wired(loop):
    """Several clients dribbling concurrently: each one's reply
    carries its own request id."""

    class Echo:
        def echo(self, value):
            return value

    transport = TcpTransport(loop=loop)
    orb = create_orb(ORBIX, transport, host="127.0.0.1", port=0)
    results = {}
    try:
        orb.activate(Echo(), ECHO, object_name="echo")
        barrier = threading.Barrier(4)

        def dribbler(request_id):
            request = encode_message(RequestMessage(
                request_id=request_id, object_key=b"obj:echo",
                operation="echo", arguments=[request_id]))
            barrier.wait()
            with socket.create_connection(orb.endpoint,
                                          timeout=5.0) as sock:
                for start in range(0, len(request), 5):
                    sock.sendall(request[start:start + 5])
                sock.settimeout(5.0)
                results[request_id] = peek_reply_id(read_giop_frame(sock))

        threads = [threading.Thread(target=dribbler, args=(100 + index,))
                   for index in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert results == {100 + index: 100 + index for index in range(4)}
    finally:
        transport.close()
