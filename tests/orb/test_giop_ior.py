"""GIOP framing and IOR stringification tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MarshalError
from repro.orb.giop import (HEADER_SIZE, MAGIC, LocateReplyMessage,
                            LocateRequestMessage, LocateStatus, MessageType,
                            ReplyMessage, ReplyStatus, RequestMessage,
                            decode_message, encode_message)
from repro.orb.ior import IiopProfile, Ior, make_ior


class TestGiopHeader:
    def test_header_layout(self):
        message = RequestMessage(request_id=1, object_key=b"k",
                                 operation="op")
        data = encode_message(message)
        assert data[:4] == MAGIC
        assert data[4:6] == bytes([1, 0])  # GIOP 1.0
        assert data[7] == MessageType.REQUEST
        size = int.from_bytes(data[8:12], "big")
        assert size == len(data) - HEADER_SIZE

    def test_bad_magic(self):
        with pytest.raises(MarshalError):
            decode_message(b"JUNK" + bytes(10))

    def test_short_message(self):
        with pytest.raises(MarshalError):
            decode_message(b"GIOP")

    def test_truncated_body(self):
        message = encode_message(RequestMessage(1, b"k", "op"))
        with pytest.raises(MarshalError):
            decode_message(message[:-2])

    def test_unknown_version(self):
        data = bytearray(encode_message(RequestMessage(1, b"k", "op")))
        data[5] = 9
        with pytest.raises(MarshalError):
            decode_message(bytes(data))

    def test_unknown_message_type(self):
        data = bytearray(encode_message(RequestMessage(1, b"k", "op")))
        data[7] = 99
        with pytest.raises(MarshalError):
            decode_message(bytes(data))


class TestMessages:
    def test_request_roundtrip(self):
        message = RequestMessage(
            request_id=7, object_key=b"orb/Iface/obj1",
            operation="find_coalitions",
            arguments=["Medical", 3, {"deep": [True, None]}],
            response_expected=True,
            service_context=[(0xBEEF, "Orbix")])
        decoded = decode_message(encode_message(message))
        assert decoded == message

    def test_oneway_request(self):
        message = RequestMessage(1, b"k", "notify", ["x"],
                                 response_expected=False)
        assert decode_message(encode_message(message)).response_expected \
            is False

    def test_reply_roundtrip(self):
        for status in ReplyStatus:
            message = ReplyMessage(request_id=3, status=status,
                                   body={"answer": 42})
            decoded = decode_message(encode_message(message))
            assert decoded.status is status
            assert decoded.body == {"answer": 42}

    def test_locate_roundtrip(self):
        request = LocateRequestMessage(request_id=5, object_key=b"key")
        assert decode_message(encode_message(request)) == request
        reply = LocateReplyMessage(request_id=5,
                                   status=LocateStatus.OBJECT_HERE)
        assert decode_message(encode_message(reply)) == reply

    def test_little_endian_roundtrip(self):
        message = ReplyMessage(1, ReplyStatus.NO_EXCEPTION, body=[1.5, "x"])
        decoded = decode_message(encode_message(message, little_endian=True))
        assert decoded.body == [1.5, "x"]

    @given(request_id=st.integers(0, 2**32 - 1),
           operation=st.text(min_size=1, max_size=20),
           key=st.binary(min_size=1, max_size=30),
           args=st.lists(st.one_of(st.integers(-2**31, 2**31 - 1),
                                   st.text(max_size=15), st.none(),
                                   st.booleans()), max_size=5))
    @settings(max_examples=60, deadline=None)
    def test_request_roundtrip_property(self, request_id, operation, key,
                                        args):
        message = RequestMessage(request_id=request_id, object_key=key,
                                 operation=operation, arguments=args)
        assert decode_message(encode_message(message)) == message


class TestIor:
    def test_roundtrip(self):
        ior = make_ior("IDL:webfindit/CoDatabase:1.0",
                       "dba.icis.qut.edu.au", 20001, b"codb-RBH")
        parsed = Ior.from_string(ior.to_string())
        assert parsed == ior
        assert parsed.primary.endpoint == ("dba.icis.qut.edu.au", 20001)

    def test_string_form_prefix(self):
        ior = make_ior("IDL:x:1.0", "h", 1, b"k")
        assert ior.to_string().startswith("IOR:")

    def test_multi_profile(self):
        ior = Ior(type_id="IDL:x:1.0", profiles=(
            IiopProfile("a", 1, b"k1"), IiopProfile("b", 2, b"k2")))
        parsed = Ior.from_string(ior.to_string())
        assert len(parsed.profiles) == 2
        assert parsed.primary.host == "a"

    def test_bad_prefix(self):
        with pytest.raises(MarshalError):
            Ior.from_string("ior:abcdef")

    def test_bad_hex(self):
        with pytest.raises(MarshalError):
            Ior.from_string("IOR:zzzz")

    def test_no_profiles_primary_raises(self):
        with pytest.raises(MarshalError):
            __ = Ior(type_id="IDL:x:1.0").primary

    @given(host=st.text(min_size=1, max_size=20).filter(str.strip),
           port=st.integers(0, 65535), key=st.binary(min_size=1, max_size=40),
           type_id=st.text(min_size=1, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, host, port, key, type_id):
        ior = make_ior(type_id, host, port, key)
        assert Ior.from_string(ior.to_string()) == ior


class TestUnsupportedMessageTypes:
    def test_close_connection_and_message_error_rejected(self):
        for type_octet in (MessageType.CANCEL_REQUEST,
                           MessageType.CLOSE_CONNECTION,
                           MessageType.MESSAGE_ERROR):
            frame = bytearray(encode_message(RequestMessage(1, b"k", "op")))
            frame[7] = int(type_octet)
            with pytest.raises(MarshalError):
                decode_message(bytes(frame))
