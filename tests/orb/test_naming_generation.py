"""Naming-service generation counters (the stale-IOR window).

A server that crashes and restarts re-binds its name to a fresh IOR.
Clients that cached the old IOR (and proxies built from it) need a
cheap way to notice: every binding carries a generation counter that
``rebind`` bumps, and ``resolve_with_generation`` returns both parts
atomically.
"""

import pytest

from repro.errors import NamingError
from repro.orb.naming import start_naming_service
from repro.orb.orb import Orb
from repro.orb.transport import InMemoryNetwork


INTERFACE = None  # naming is self-describing; no extra IDL needed


def build_naming():
    transport = InMemoryNetwork()
    orb = Orb(name="test", transport=transport, host="test.example")
    __, naming = start_naming_service(orb)
    return orb, naming


def fake_ior(orb, suffix):
    """Any real IOR will do — activate a trivial servant."""
    from repro.orb.idl import InterfaceBuilder

    interface = (InterfaceBuilder(f"Thing{suffix}", module="test")
                 .operation("ping").build())

    class Servant:
        def ping(self):
            return "pong"

    return orb.activate(Servant(), interface, object_name=f"thing-{suffix}")


class TestGenerations:
    def test_first_bind_is_generation_one(self):
        orb, naming = build_naming()
        naming.bind("a/b", fake_ior(orb, 1))
        __, generation = naming.resolve_with_generation("a/b")
        assert generation == 1

    def test_rebind_bumps_the_generation(self):
        orb, naming = build_naming()
        first = fake_ior(orb, 1)
        second = fake_ior(orb, 2)
        naming.bind("a/b", first)
        naming.rebind("a/b", second)
        ior, generation = naming.resolve_with_generation("a/b")
        assert generation == 2
        assert ior.to_string() == second.to_string()

    def test_generation_survives_unbind_rebind(self):
        """Monotonic across the binding's whole history: a client that
        cached generation 1 can never see a *new* IOR under it."""
        orb, naming = build_naming()
        naming.bind("a/b", fake_ior(orb, 1))
        naming.unbind("a/b")
        naming.bind("a/b", fake_ior(orb, 2))
        __, generation = naming.resolve_with_generation("a/b")
        assert generation == 2

    def test_resolve_with_generation_unbound_name(self):
        __, naming = build_naming()
        with pytest.raises(NamingError):
            naming.resolve_with_generation("no/such")

    def test_plain_resolve_untouched(self):
        orb, naming = build_naming()
        ior = fake_ior(orb, 1)
        naming.bind("a/b", ior)
        assert naming.resolve("a/b").to_string() == ior.to_string()


class TestStaleIorRegression:
    def test_cached_proxy_detects_rebind(self):
        """The client pattern the system facade uses: cache (proxy,
        generation); on failure, re-resolve and compare generations to
        decide between 'endpoint is just down' and 'endpoint moved'."""
        orb, naming = build_naming()
        old = fake_ior(orb, 1)
        naming.bind("svc", old)
        __, cached_generation = naming.resolve_with_generation("svc")

        # Server restarts: same name, new IOR.
        new = fake_ior(orb, 2)
        naming.rebind("svc", new)

        ior, generation = naming.resolve_with_generation("svc")
        assert generation != cached_generation  # stale cache detected
        assert ior.to_string() == new.to_string()

        # Unchanged binding: generation equality proves the cached
        # proxy is still the freshest there is — no rebuild needed.
        __, again = naming.resolve_with_generation("svc")
        assert again == generation
