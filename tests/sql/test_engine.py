"""Database facade: DDL, transactions, dialects, metadata."""

import pytest

from repro.errors import (CatalogError, SqlError, SqlTypeError,
                          TransactionError)
from repro.sql.dialect import DB2, MSQL, ORACLE, SYBASE, get_dialect
from repro.sql.engine import Database
from repro.sql.types import SqlType


class TestDdl:
    def test_create_and_list_tables(self):
        db = Database("d")
        db.execute("CREATE TABLE a (x INT)")
        db.execute("CREATE TABLE b (y INT)")
        assert db.table_names() == ["a", "b"]

    def test_create_duplicate_table_raises(self):
        db = Database("d")
        db.execute("CREATE TABLE a (x INT)")
        with pytest.raises(CatalogError):
            db.execute("CREATE TABLE a (x INT)")

    def test_if_not_exists_is_silent(self):
        db = Database("d")
        db.execute("CREATE TABLE a (x INT)")
        db.execute("CREATE TABLE IF NOT EXISTS a (x INT)")

    def test_drop_table(self):
        db = Database("d")
        db.execute("CREATE TABLE a (x INT)")
        db.execute("DROP TABLE a")
        assert not db.table_names()

    def test_drop_missing_table(self):
        db = Database("d")
        with pytest.raises(CatalogError):
            db.execute("DROP TABLE ghost")
        db.execute("DROP TABLE IF EXISTS ghost")  # silent

    def test_case_insensitive_table_lookup(self):
        db = Database("d")
        db.execute("CREATE TABLE People (x INT)")
        db.execute("INSERT INTO people VALUES (1)")
        assert db.execute("SELECT * FROM PEOPLE").rowcount == 1

    def test_unique_column_constraint(self):
        from repro.errors import IntegrityError
        db = Database("d")
        db.execute("CREATE TABLE u (id INT PRIMARY KEY, email VARCHAR(40) UNIQUE)")
        db.execute("INSERT INTO u VALUES (1, 'a@x.com')")
        with pytest.raises(IntegrityError):
            db.execute("INSERT INTO u VALUES (2, 'a@x.com')")

    def test_create_index_on_missing_column(self):
        db = Database("d")
        db.execute("CREATE TABLE t (a INT)")
        with pytest.raises(CatalogError):
            db.execute("CREATE INDEX i ON t (missing)")

    def test_drop_index(self):
        db = Database("d")
        db.execute("CREATE TABLE t (a INT)")
        db.execute("CREATE INDEX i ON t (a)")
        db.execute("DROP INDEX i")
        with pytest.raises(CatalogError):
            db.execute("DROP INDEX i")

    def test_execute_script(self):
        db = Database("d")
        results = db.execute_script(
            "CREATE TABLE t (a INT); INSERT INTO t VALUES (1); "
            "SELECT * FROM t")
        assert results[-1].rows == [(1,)]


class TestTransactions:
    def _db(self):
        db = Database("t")
        db.execute("CREATE TABLE t (a INT)")
        db.execute("INSERT INTO t VALUES (1), (2)")
        return db

    def test_rollback_restores_rows(self):
        db = self._db()
        db.execute("BEGIN")
        db.execute("DELETE FROM t")
        db.execute("INSERT INTO t VALUES (99)")
        db.execute("ROLLBACK")
        assert sorted(r[0] for r in db.execute("SELECT * FROM t").rows) == [1, 2]

    def test_commit_keeps_changes(self):
        db = self._db()
        db.execute("BEGIN")
        db.execute("INSERT INTO t VALUES (3)")
        db.execute("COMMIT")
        assert db.row_count("t") == 3

    def test_nested_begin_rejected(self):
        db = self._db()
        db.execute("BEGIN")
        with pytest.raises(TransactionError):
            db.execute("BEGIN")

    def test_commit_without_begin(self):
        with pytest.raises(TransactionError):
            self._db().execute("COMMIT")

    def test_rollback_without_begin(self):
        with pytest.raises(TransactionError):
            self._db().execute("ROLLBACK")

    def test_rollback_drops_tables_created_inside(self):
        db = self._db()
        db.execute("BEGIN")
        db.execute("CREATE TABLE fresh (x INT)")
        db.execute("ROLLBACK")
        assert "fresh" not in db.table_names()

    def test_in_transaction_flag(self):
        db = self._db()
        assert not db.in_transaction
        db.begin()
        assert db.in_transaction
        db.commit()
        assert not db.in_transaction

    def test_rollback_preserves_row_ids(self):
        db = self._db()
        db.begin()
        db.execute("INSERT INTO t VALUES (3)")
        db.rollback()
        db.execute("INSERT INTO t VALUES (4)")
        # No duplicate-key style clash from reused internal ids.
        assert db.row_count("t") == 3


class TestDialects:
    def test_oracle_types(self):
        db = Database("o", dialect="oracle")
        db.execute("CREATE TABLE t (a VARCHAR2(10), b NUMBER, c CLOB)")
        schema = db.schema_of("t")
        assert schema.columns[0].sql_type is SqlType.TEXT
        assert schema.columns[1].sql_type is SqlType.REAL

    def test_db2_banner(self):
        assert Database("d", dialect="db2").banner.startswith("DB2")

    def test_unknown_dialect(self):
        with pytest.raises(SqlError):
            Database("x", dialect="postgres")

    def test_unknown_type_in_dialect(self):
        db = Database("m", dialect="msql")
        with pytest.raises(SqlError):
            db.execute("CREATE TABLE t (a VARCHAR2(10))")

    def test_dialect_literal_formatting(self):
        assert ORACLE.format_literal("O'Brien") == "'O''Brien'"
        assert MSQL.format_literal(None) == "NULL"
        assert DB2.format_literal(True) == "TRUE"
        assert SYBASE.quote_identifier("order") == "[order]"

    def test_get_dialect_case_insensitive(self):
        assert get_dialect("ORACLE") is ORACLE

    def test_same_sql_across_dialects(self):
        """The cross-dialect guarantee the wrapper layer relies on."""
        results = []
        for dialect in ("oracle", "msql", "db2"):
            db = Database(f"d-{dialect}", dialect=dialect)
            db.execute("CREATE TABLE t (a INT, b VARCHAR(10))")
            db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
            results.append(db.execute(
                "SELECT b FROM t WHERE a = 2").scalar())
        assert results == ["y", "y", "y"]


class TestMetadata:
    def test_statement_counter(self):
        db = Database("d")
        before = db.statements_executed
        db.execute("CREATE TABLE t (a INT)")
        db.execute("SELECT * FROM t")
        assert db.statements_executed == before + 2

    def test_load_rows_bypasses_sql(self):
        db = Database("d")
        db.execute("CREATE TABLE t (a INT, b VARCHAR(5))")
        assert db.load_rows("t", [[1, "x"], [2, "y"]]) == 2
        assert db.row_count("t") == 2

    def test_load_rows_still_validates(self):
        db = Database("d")
        db.execute("CREATE TABLE t (a INT NOT NULL)")
        from repro.errors import IntegrityError
        with pytest.raises(IntegrityError):
            db.load_rows("t", [[None]])

    def test_coercion_on_insert(self):
        db = Database("d")
        db.execute("CREATE TABLE t (a INT, d DATE)")
        db.execute("INSERT INTO t VALUES ('12', '1998-03-04')")
        import datetime
        assert db.execute("SELECT a, d FROM t").first() == (
            12, datetime.date(1998, 3, 4))

    def test_bad_coercion_raises(self):
        db = Database("d")
        db.execute("CREATE TABLE t (a INT)")
        with pytest.raises(SqlTypeError):
            db.execute("INSERT INTO t VALUES ('not a number')")
