"""INSERT / UPDATE / DELETE semantics."""

import pytest

from repro.errors import IntegrityError
from repro.sql.engine import Database


class TestInsert:
    def test_insert_reports_rowcount(self, people_db):
        result = people_db.execute(
            "INSERT INTO person VALUES (6, 'Finn', 22, 'Darwin'), "
            "(7, 'Gia', 31, 'Perth')")
        assert result.rowcount == 2

    def test_insert_with_column_subset_fills_null(self, people_db):
        people_db.execute("INSERT INTO person (id, name) VALUES (8, 'Hana')")
        row = people_db.execute(
            "SELECT age, city FROM person WHERE id = 8").first()
        assert row == (None, None)

    def test_insert_duplicate_pk_rejected(self, people_db):
        with pytest.raises(IntegrityError):
            people_db.execute(
                "INSERT INTO person VALUES (1, 'Dup', 1, 'X')")

    def test_insert_not_null_violation(self, people_db):
        with pytest.raises(IntegrityError):
            people_db.execute(
                "INSERT INTO person (id, name) VALUES (9, NULL)")

    def test_insert_arity_mismatch(self, people_db):
        with pytest.raises(IntegrityError):
            people_db.execute("INSERT INTO person VALUES (10, 'x')")

    def test_insert_select(self, people_db):
        people_db.execute(
            "CREATE TABLE person_copy (id INT, name VARCHAR(40))")
        count = people_db.execute(
            "INSERT INTO person_copy SELECT id, name FROM person").rowcount
        assert count == 5
        assert people_db.row_count("person_copy") == 5

    def test_insert_expression_values(self, people_db):
        people_db.execute(
            "INSERT INTO person VALUES (5 + 6, UPPER('zed'), 10 * 3, NULL)")
        row = people_db.execute(
            "SELECT name, age FROM person WHERE id = 11").first()
        assert row == ("ZED", 30)

    def test_failed_multi_row_insert_is_partial(self, people_db):
        # Statement-level atomicity is not promised (era-faithful mSQL
        # behaviour); the transaction layer provides rollback.
        with pytest.raises(IntegrityError):
            people_db.execute(
                "INSERT INTO person VALUES (20, 'Ok', 1, 'A'), "
                "(1, 'Clash', 2, 'B')")
        assert people_db.execute(
            "SELECT COUNT(*) FROM person WHERE id = 20").scalar() == 1


class TestUpdate:
    def test_update_with_where(self, people_db):
        count = people_db.execute(
            "UPDATE person SET city = 'Gold Coast' WHERE id = 2").rowcount
        assert count == 1
        assert people_db.execute(
            "SELECT city FROM person WHERE id = 2").scalar() == "Gold Coast"

    def test_update_all_rows(self, people_db):
        count = people_db.execute("UPDATE person SET city = 'QLD'").rowcount
        assert count == 5

    def test_update_uses_old_row_values(self, people_db):
        people_db.execute(
            "UPDATE person SET age = age + 1 WHERE age IS NOT NULL")
        assert people_db.execute(
            "SELECT age FROM person WHERE id = 1").scalar() == 35

    def test_update_swap_columns(self, people_db):
        people_db.execute("CREATE TABLE pair (a INT, b INT)")
        people_db.execute("INSERT INTO pair VALUES (1, 2)")
        people_db.execute("UPDATE pair SET a = b, b = a")
        assert people_db.execute("SELECT a, b FROM pair").first() == (2, 1)

    def test_update_pk_conflict_rolls_back_row(self, people_db):
        with pytest.raises(IntegrityError):
            people_db.execute("UPDATE person SET id = 1 WHERE id = 2")
        # row 2 unchanged
        assert people_db.execute(
            "SELECT name FROM person WHERE id = 2").scalar() == "Bob"

    def test_update_type_coercion(self, people_db):
        people_db.execute("UPDATE person SET age = '40' WHERE id = 5")
        assert people_db.execute(
            "SELECT age FROM person WHERE id = 5").scalar() == 40


class TestDelete:
    def test_delete_with_where(self, people_db):
        assert people_db.execute(
            "DELETE FROM person WHERE age IS NULL").rowcount == 1
        assert people_db.row_count("person") == 4

    def test_delete_all(self, people_db):
        assert people_db.execute("DELETE FROM orders").rowcount == 4
        assert people_db.row_count("orders") == 0

    def test_delete_none_matching(self, people_db):
        assert people_db.execute(
            "DELETE FROM person WHERE id = 999").rowcount == 0

    def test_delete_then_reinsert_pk(self, people_db):
        people_db.execute("DELETE FROM person WHERE id = 1")
        people_db.execute("INSERT INTO person VALUES (1, 'New', 1, 'X')")
        assert people_db.execute(
            "SELECT name FROM person WHERE id = 1").scalar() == "New"


class TestParameters:
    def test_params_in_dml(self, people_db):
        people_db.execute("UPDATE person SET age = ? WHERE name = ?",
                          [50, "Alice"])
        assert people_db.execute(
            "SELECT age FROM person WHERE id = 1").scalar() == 50

    def test_executemany_rowcount(self, people_db):
        total = people_db.executemany(
            "INSERT INTO orders VALUES (?, ?, ?, ?)",
            [[20, 4, 1.0, "1998-05-01"], [21, 5, 2.0, "1998-05-02"]])
        assert total == 2

    def test_missing_param_raises(self, people_db):
        from repro.errors import SqlError
        with pytest.raises(SqlError):
            people_db.execute("SELECT * FROM person WHERE id = ?")
