"""SQL lexer unit tests."""

import pytest

from repro.errors import SqlSyntaxError
from repro.sql.lexer import tokenize
from repro.sql.tokens import TokenType


def kinds(sql):
    return [t.type for t in tokenize(sql)]


def values(sql):
    return [t.value for t in tokenize(sql)[:-1]]


class TestBasics:
    def test_empty_input_yields_only_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].type is TokenType.EOF

    def test_keywords_are_uppercased(self):
        assert values("select from where") == ["SELECT", "FROM", "WHERE"]

    def test_identifiers_preserve_case(self):
        tokens = tokenize("SELECT Name FROM Person")
        assert tokens[1].value == "Name"
        assert tokens[1].type is TokenType.IDENTIFIER

    def test_underscore_identifier(self):
        assert values("medical_students")[0] == "medical_students"

    def test_integer_literal(self):
        token = tokenize("42")[0]
        assert token.type is TokenType.INTEGER
        assert token.value == 42

    def test_real_literal(self):
        token = tokenize("3.25")[0]
        assert token.type is TokenType.REAL
        assert token.value == pytest.approx(3.25)

    def test_exponent_literal(self):
        token = tokenize("1e3")[0]
        assert token.type is TokenType.REAL
        assert token.value == pytest.approx(1000.0)

    def test_negative_exponent(self):
        token = tokenize("2.5E-2")[0]
        assert token.value == pytest.approx(0.025)

    def test_leading_dot_number(self):
        token = tokenize(".5")[0]
        assert token.type is TokenType.REAL
        assert token.value == pytest.approx(0.5)


class TestStrings:
    def test_simple_string(self):
        token = tokenize("'hello'")[0]
        assert token.type is TokenType.STRING
        assert token.value == "hello"

    def test_escaped_quote(self):
        token = tokenize("'O''Brien'")[0]
        assert token.value == "O'Brien"

    def test_empty_string(self):
        assert tokenize("''")[0].value == ""

    def test_unterminated_string_raises(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("'oops")

    def test_string_keeps_case_and_spaces(self):
        assert tokenize("'AIDS and drugs'")[0].value == "AIDS and drugs"


class TestQuotedIdentifiers:
    def test_double_quoted(self):
        token = tokenize('"Select"')[0]
        assert token.type is TokenType.IDENTIFIER
        assert token.value == "Select"

    def test_bracketed(self):
        token = tokenize("[order]")[0]
        assert token.type is TokenType.IDENTIFIER
        assert token.value == "order"

    def test_unterminated_quoted_identifier(self):
        with pytest.raises(SqlSyntaxError):
            tokenize('"abc')

    def test_empty_quoted_identifier(self):
        with pytest.raises(SqlSyntaxError):
            tokenize('""')


class TestOperatorsAndComments:
    def test_multi_char_operators(self):
        assert values("a <> b <= c >= d != e || f") == [
            "a", "<>", "b", "<=", "c", ">=", "d", "!=", "e", "||", "f"]

    def test_line_comment_skipped(self):
        assert values("SELECT 1 -- trailing comment") == ["SELECT", 1]

    def test_block_comment_skipped(self):
        assert values("SELECT /* inline */ 1") == ["SELECT", 1]

    def test_unterminated_block_comment(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("SELECT /* oops")

    def test_param_token(self):
        token = tokenize("?")[0]
        assert token.type is TokenType.PARAM

    def test_unexpected_character(self):
        with pytest.raises(SqlSyntaxError) as excinfo:
            tokenize("SELECT $")
        assert "$" in str(excinfo.value)

    def test_position_tracking(self):
        tokens = tokenize("SELECT\n  name")
        assert tokens[0].line == 1
        assert tokens[1].line == 2
        assert tokens[1].column == 3
