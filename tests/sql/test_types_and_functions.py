"""SQL type coercion and built-in function tests."""

import datetime

import pytest

from repro.errors import SqlError, SqlTypeError
from repro.sql.engine import Database
from repro.sql.functions import (AvgAggregate, CountAggregate, MaxAggregate,
                                 MinAggregate, SumAggregate, is_aggregate)
from repro.sql.types import SqlType, coerce, comparable, infer_type


class TestCoercion:
    def test_null_passes_any_type(self):
        for sql_type in SqlType:
            assert coerce(None, sql_type) is None

    def test_int_widens_to_real(self):
        assert coerce(3, SqlType.REAL) == 3.0
        assert isinstance(coerce(3, SqlType.REAL), float)

    def test_exact_real_narrows_to_int(self):
        assert coerce(4.0, SqlType.INTEGER) == 4

    def test_inexact_real_to_int_rejected(self):
        with pytest.raises(SqlTypeError):
            coerce(4.5, SqlType.INTEGER)

    def test_string_to_number(self):
        assert coerce("17", SqlType.INTEGER) == 17
        assert coerce("2.5", SqlType.REAL) == 2.5

    def test_bad_string_to_number(self):
        with pytest.raises(SqlTypeError):
            coerce("abc", SqlType.INTEGER)

    def test_date_from_iso_string(self):
        assert coerce("1998-07-04", SqlType.DATE) == datetime.date(1998, 7, 4)

    def test_bad_date_rejected(self):
        with pytest.raises(SqlTypeError):
            coerce("04/07/1998", SqlType.DATE)

    def test_bool_coercions(self):
        assert coerce(1, SqlType.BOOLEAN) is True
        assert coerce("false", SqlType.BOOLEAN) is False
        with pytest.raises(SqlTypeError):
            coerce(7, SqlType.BOOLEAN)

    def test_number_to_text(self):
        assert coerce(12, SqlType.TEXT) == "12"

    def test_infer_type(self):
        assert infer_type(True) is SqlType.BOOLEAN
        assert infer_type(1) is SqlType.INTEGER
        assert infer_type(1.5) is SqlType.REAL
        assert infer_type("x") is SqlType.TEXT
        assert infer_type(datetime.date(1998, 1, 1)) is SqlType.DATE

    def test_comparable_rules(self):
        assert comparable(1, 2.5)
        assert comparable("a", "b")
        assert not comparable(1, "1")
        assert not comparable(True, 1)


class TestScalarFunctions:
    @pytest.fixture()
    def db(self):
        return Database("fn")

    def scalar(self, db, expression):
        return db.execute(f"SELECT {expression}").scalar()

    def test_string_functions(self, db):
        assert self.scalar(db, "UPPER('abc')") == "ABC"
        assert self.scalar(db, "LOWER('ABC')") == "abc"
        assert self.scalar(db, "LENGTH('hello')") == 5
        assert self.scalar(db, "SUBSTR('hello', 2, 3)") == "ell"
        assert self.scalar(db, "SUBSTR('hello', 3)") == "llo"
        assert self.scalar(db, "TRIM('  x  ')") == "x"
        assert self.scalar(db, "REPLACE('aXb', 'X', '-')") == "a-b"
        assert self.scalar(db, "INSTR('hello', 'll')") == 3
        assert self.scalar(db, "CONCAT('a', 'b', 'c')") == "abc"

    def test_numeric_functions(self, db):
        assert self.scalar(db, "ABS(-4)") == 4
        assert self.scalar(db, "ROUND(3.456, 2)") == pytest.approx(3.46)
        assert self.scalar(db, "FLOOR(3.9)") == 3
        assert self.scalar(db, "CEIL(3.1)") == 4
        assert self.scalar(db, "MOD(10, 3)") == 1

    def test_mod_by_zero(self, db):
        with pytest.raises(SqlError):
            self.scalar(db, "MOD(1, 0)")

    def test_null_handling_functions(self, db):
        assert self.scalar(db, "COALESCE(NULL, NULL, 3)") == 3
        assert self.scalar(db, "COALESCE(NULL, NULL)") is None
        assert self.scalar(db, "NULLIF(5, 5)") is None
        assert self.scalar(db, "NULLIF(5, 6)") == 5
        assert self.scalar(db, "IFNULL(NULL, 'x')") == "x"
        assert self.scalar(db, "NVL(NULL, 9)") == 9  # Oracle spelling

    def test_null_propagation(self, db):
        assert self.scalar(db, "UPPER(NULL)") is None
        assert self.scalar(db, "ABS(NULL)") is None

    def test_date_functions(self, db):
        assert self.scalar(db, "YEAR(DATE('1998-07-04'))") == 1998
        assert self.scalar(db, "MONTH(DATE('1998-07-04'))") == 7
        assert self.scalar(db, "DAY(DATE('1998-07-04'))") == 4

    def test_unknown_function(self, db):
        with pytest.raises(SqlError):
            self.scalar(db, "NOSUCHFN(1)")


class TestAggregateAccumulators:
    def test_is_aggregate(self):
        assert is_aggregate("count") and is_aggregate("SUM")
        assert not is_aggregate("UPPER")

    def test_count_star_counts_everything(self):
        acc = CountAggregate(count_star=True)
        for value in [1, None, "x"]:
            acc.add(value)
        assert acc.result() == 3

    def test_count_skips_null(self):
        acc = CountAggregate()
        for value in [1, None, 2]:
            acc.add(value)
        assert acc.result() == 2

    def test_distinct_sum(self):
        acc = SumAggregate(distinct=True)
        for value in [5, 5, 3]:
            acc.add(value)
        assert acc.result() == 8

    def test_sum_empty_is_null(self):
        assert SumAggregate().result() is None

    def test_avg(self):
        acc = AvgAggregate()
        for value in [2, 4, None]:
            acc.add(value)
        assert acc.result() == 3.0

    def test_min_max(self):
        low, high = MinAggregate(), MaxAggregate()
        for value in [3, 1, None, 2]:
            low.add(value)
            high.add(value)
        assert low.result() == 1
        assert high.result() == 3
