"""Row storage and index maintenance."""

import pytest

from repro.errors import IntegrityError
from repro.sql.catalog import Column, TableSchema
from repro.sql.storage import HashIndex, Table
from repro.sql.types import SqlType


def make_table(primary_key=True):
    columns = [
        Column("id", SqlType.INTEGER, primary_key=primary_key),
        Column("name", SqlType.TEXT),
        Column("grp", SqlType.INTEGER),
    ]
    return Table(TableSchema("t", columns))


class TestTable:
    def test_insert_returns_increasing_row_ids(self):
        table = make_table()
        first = table.insert([1, "a", 0])
        second = table.insert([2, "b", 0])
        assert second > first

    def test_scan_in_insertion_order(self):
        table = make_table()
        for i in range(5):
            table.insert([i, f"n{i}", i % 2])
        names = [row[1] for __, row in table.scan()]
        assert names == ["n0", "n1", "n2", "n3", "n4"]

    def test_pk_uniqueness(self):
        table = make_table()
        table.insert([1, "a", 0])
        with pytest.raises(IntegrityError):
            table.insert([1, "b", 0])

    def test_failed_insert_leaves_no_index_residue(self):
        table = make_table()
        table.insert([1, "a", 0])
        with pytest.raises(IntegrityError):
            table.insert([1, "b", 0])
        table.delete(1)
        # if residue remained this would raise
        table.insert([1, "c", 0])

    def test_update_moves_index_entries(self):
        table = make_table()
        row_id = table.insert([1, "a", 0])
        table.update(row_id, [2, "a", 0])
        index = table.index_on(["id"])
        assert index.lookup((2,)) == frozenset({row_id})
        assert index.lookup((1,)) == frozenset()

    def test_update_conflict_restores_old_row(self):
        table = make_table()
        table.insert([1, "a", 0])
        row_id = table.insert([2, "b", 0])
        with pytest.raises(IntegrityError):
            table.update(row_id, [1, "b", 0])
        assert table.row(row_id) == [2, "b", 0]
        assert table.index_on(["id"]).lookup((2,)) == frozenset({row_id})

    def test_delete_removes_from_indexes(self):
        table = make_table()
        row_id = table.insert([1, "a", 0])
        table.delete(row_id)
        assert len(table) == 0
        assert table.index_on(["id"]).lookup((1,)) == frozenset()

    def test_width_mismatch(self):
        with pytest.raises(IntegrityError):
            make_table().insert([1, "a"])

    def test_not_null_enforced_on_pk(self):
        table = make_table()
        with pytest.raises(IntegrityError):
            table.insert([None, "a", 0])


class TestSecondaryIndex:
    def test_non_unique_index_groups_rows(self):
        table = make_table()
        ids = [table.insert([i, "x", i % 3]) for i in range(9)]
        table.add_index("by_grp", ["grp"])
        index = table.index_on(["grp"])
        assert index.lookup((0,)) == frozenset({ids[0], ids[3], ids[6]})

    def test_null_keys_not_indexed(self):
        table = make_table()
        table.insert([1, "a", None])
        table.add_index("by_grp", ["grp"])
        assert len(table.index_on(["grp"])) == 0

    def test_unique_secondary_index_enforced(self):
        table = make_table()
        table.insert([1, "a", 10])
        table.add_index("u_grp", ["grp"], unique=True)
        with pytest.raises(IntegrityError):
            table.insert([2, "b", 10])

    def test_composite_index(self):
        table = make_table()
        row_id = table.insert([1, "a", 5])
        table.add_index("combo", ["name", "grp"])
        assert table.index_on(["name", "grp"]).lookup(("a", 5)) == \
            frozenset({row_id})

    def test_index_on_unknown_columns_is_none(self):
        assert make_table().index_on(["missing"]) is None


class TestSnapshots:
    def test_snapshot_restore_roundtrip(self):
        table = make_table()
        table.insert([1, "a", 0])
        snapshot = table.snapshot()
        next_id = table.next_row_id
        table.insert([2, "b", 0])
        table.delete(1)
        table.restore(snapshot, next_id)
        assert len(table) == 1
        assert table.index_on(["id"]).lookup((1,)) != frozenset()

    def test_snapshot_is_value_copy(self):
        table = make_table()
        row_id = table.insert([1, "a", 0])
        snapshot = table.snapshot()
        table.update(row_id, [1, "changed", 0])
        assert snapshot[row_id][1] == "a"


class TestHashIndexDirect:
    def test_lookup_empty(self):
        index = HashIndex("i", [0])
        assert index.lookup((1,)) == frozenset()

    def test_remove_is_idempotent(self):
        index = HashIndex("i", [0])
        index.insert(1, [5])
        index.remove(1, [5])
        index.remove(1, [5])
        assert len(index) == 0
