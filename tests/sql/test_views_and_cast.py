"""Views and CAST."""

import datetime

import pytest

from repro.errors import CatalogError, SqlTypeError
from repro.sql.engine import Database


@pytest.fixture()
def db():
    db = Database("v", dialect="oracle")
    db.execute("CREATE TABLE orders (id INT PRIMARY KEY, customer "
               "VARCHAR2(30), amount NUMBER, placed DATE)")
    db.executemany(
        "INSERT INTO orders VALUES (?, ?, ?, ?)",
        [[1, "alice", 120.0, "1998-01-05"],
         [2, "bob", 80.0, "1998-02-01"],
         [3, "alice", 40.0, "1998-02-20"],
         [4, "carol", 300.0, "1998-03-10"]])
    return db


class TestViews:
    def test_view_filters(self, db):
        db.execute("CREATE VIEW big AS SELECT * FROM orders "
                   "WHERE amount >= 100")
        result = db.execute("SELECT id FROM big ORDER BY id")
        assert [r[0] for r in result.rows] == [1, 4]

    def test_view_projects_and_renames(self, db):
        db.execute("CREATE VIEW totals AS SELECT customer, "
                   "SUM(amount) AS total FROM orders GROUP BY customer")
        result = db.execute(
            "SELECT customer FROM totals WHERE total > 100 ORDER BY 1")
        assert [r[0] for r in result.rows] == ["alice", "carol"]

    def test_view_reflects_base_changes(self, db):
        db.execute("CREATE VIEW big AS SELECT id FROM orders "
                   "WHERE amount >= 100")
        db.execute("INSERT INTO orders VALUES (5, 'dan', 999.0, "
                   "'1998-04-01')")
        assert db.execute("SELECT COUNT(*) FROM big").scalar() == 3

    def test_view_over_view(self, db):
        db.execute("CREATE VIEW big AS SELECT * FROM orders "
                   "WHERE amount >= 100")
        db.execute("CREATE VIEW big_alice AS SELECT * FROM big "
                   "WHERE customer = 'alice'")
        assert db.execute("SELECT COUNT(*) FROM big_alice").scalar() == 1

    def test_view_joins_with_table(self, db):
        db.execute("CREATE VIEW big AS SELECT id, customer FROM orders "
                   "WHERE amount >= 100")
        result = db.execute(
            "SELECT b.customer, o.amount FROM big b "
            "JOIN orders o ON b.id = o.id ORDER BY o.amount")
        assert result.rows == [("alice", 120.0), ("carol", 300.0)]

    def test_view_with_alias(self, db):
        db.execute("CREATE VIEW big AS SELECT id FROM orders "
                   "WHERE amount >= 100")
        assert db.execute(
            "SELECT v.id FROM big v WHERE v.id = 4").scalar() == 4

    def test_view_name_conflicts(self, db):
        db.execute("CREATE VIEW big AS SELECT id FROM orders")
        with pytest.raises(CatalogError):
            db.execute("CREATE VIEW big AS SELECT id FROM orders")
        with pytest.raises(CatalogError):
            db.execute("CREATE TABLE big (x INT)")
        with pytest.raises(CatalogError):
            db.execute("CREATE VIEW orders AS SELECT 1")

    def test_drop_view(self, db):
        db.execute("CREATE VIEW big AS SELECT id FROM orders")
        assert db.view_names() == ["big"]
        db.execute("DROP VIEW big")
        assert db.view_names() == []
        with pytest.raises(CatalogError):
            db.execute("SELECT * FROM big")

    def test_drop_view_if_exists(self, db):
        db.execute("DROP VIEW IF EXISTS ghost")
        with pytest.raises(CatalogError):
            db.execute("DROP VIEW ghost")

    def test_view_of_union(self, db):
        db.execute("CREATE VIEW ends AS SELECT id FROM orders WHERE id = 1 "
                   "UNION SELECT id FROM orders WHERE id = 4")
        assert db.execute("SELECT COUNT(*) FROM ends").scalar() == 2


class TestCast:
    def scalar(self, db, expression):
        return db.execute(f"SELECT {expression}").scalar()

    def test_string_to_int(self, db):
        assert self.scalar(db, "CAST('42' AS INT)") == 42

    def test_int_to_text(self, db):
        assert self.scalar(db, "CAST(7 AS VARCHAR(3))") == "7"

    def test_string_to_date(self, db):
        assert self.scalar(db, "CAST('1998-06-01' AS DATE)") == \
            datetime.date(1998, 6, 1)

    def test_cast_null(self, db):
        assert self.scalar(db, "CAST(NULL AS INT)") is None

    def test_cast_forces_real_division(self, db):
        assert self.scalar(db, "CAST(1 AS REAL) / 2") == 0.5

    def test_cast_column(self, db):
        result = db.execute(
            "SELECT CAST(amount AS INT) FROM orders WHERE id = 2")
        assert result.scalar() == 80

    def test_invalid_cast_raises(self, db):
        with pytest.raises(SqlTypeError):
            self.scalar(db, "CAST('nope' AS INT)")

    def test_cast_in_where(self, db):
        result = db.execute(
            "SELECT id FROM orders WHERE CAST(id AS VARCHAR(2)) = '3'")
        assert result.scalar() == 3
