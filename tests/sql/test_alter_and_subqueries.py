"""ALTER TABLE ADD COLUMN, column DEFAULTs, and DML subqueries."""

import pytest

from repro.errors import CatalogError, IntegrityError, SqlError
from repro.sql.engine import Database


@pytest.fixture()
def db():
    db = Database("alter")
    db.execute("CREATE TABLE t (id INT PRIMARY KEY, name VARCHAR(20))")
    db.execute("INSERT INTO t VALUES (1, 'a'), (2, 'b')")
    return db


class TestAlterTable:
    def test_add_column_backfills_default(self, db):
        db.execute("ALTER TABLE t ADD COLUMN age INT DEFAULT 30")
        assert db.execute("SELECT age FROM t").rows == [(30,), (30,)]

    def test_add_column_without_default_backfills_null(self, db):
        db.execute("ALTER TABLE t ADD nickname VARCHAR(10)")
        assert db.execute(
            "SELECT nickname FROM t WHERE id = 1").scalar() is None

    def test_new_inserts_use_full_width(self, db):
        db.execute("ALTER TABLE t ADD age INT DEFAULT 0")
        db.execute("INSERT INTO t VALUES (3, 'c', 55)")
        assert db.execute(
            "SELECT age FROM t WHERE id = 3").scalar() == 55

    def test_partial_insert_uses_column_default(self, db):
        db.execute("ALTER TABLE t ADD age INT DEFAULT 7")
        db.execute("INSERT INTO t (id, name) VALUES (4, 'd')")
        assert db.execute(
            "SELECT age FROM t WHERE id = 4").scalar() == 7

    def test_duplicate_column_rejected(self, db):
        with pytest.raises(IntegrityError):
            db.execute("ALTER TABLE t ADD name VARCHAR(5)")

    def test_not_null_requires_default(self, db):
        with pytest.raises(IntegrityError):
            db.execute("ALTER TABLE t ADD must INT NOT NULL")
        db.execute("ALTER TABLE t ADD must INT NOT NULL DEFAULT 1")

    def test_primary_key_add_rejected(self, db):
        with pytest.raises(SqlError):
            db.execute("ALTER TABLE t ADD pk INT PRIMARY KEY")

    def test_unique_column_enforced_after_add(self, db):
        db.execute("ALTER TABLE t ADD code INT UNIQUE")
        db.execute("UPDATE t SET code = id")
        with pytest.raises(IntegrityError):
            db.execute("INSERT INTO t VALUES (5, 'e', 1)")

    def test_alter_missing_table(self, db):
        with pytest.raises(CatalogError):
            db.execute("ALTER TABLE ghost ADD x INT")

    def test_create_table_default_applies(self, db):
        db.execute("CREATE TABLE d (a INT, b VARCHAR(5) DEFAULT 'x')")
        db.execute("INSERT INTO d (a) VALUES (1)")
        assert db.execute("SELECT b FROM d").scalar() == "x"

    def test_rollback_after_alter_keeps_column_restores_rows(self, db):
        db.execute("BEGIN")
        db.execute("DELETE FROM t WHERE id = 2")
        db.execute("ALTER TABLE t ADD extra INT DEFAULT 9")
        db.execute("ROLLBACK")
        # rows restored; the added column survives as NULL-padded
        assert db.row_count("t") == 2
        assert db.execute(
            "SELECT extra FROM t WHERE id = 2").scalar() is None


class TestDmlSubqueries:
    @pytest.fixture()
    def shop(self):
        db = Database("shop")
        db.execute("CREATE TABLE items (id INT PRIMARY KEY, price REAL)")
        db.execute("CREATE TABLE stats (kind VARCHAR(10), value REAL)")
        db.execute("INSERT INTO items VALUES (1, 10.0), (2, 20.0), "
                   "(3, 30.0)")
        return db

    def test_update_set_from_scalar_subquery(self, shop):
        shop.execute("INSERT INTO stats VALUES ('avg', 0.0)")
        shop.execute("UPDATE stats SET value = "
                     "(SELECT AVG(price) FROM items) WHERE kind = 'avg'")
        assert shop.execute(
            "SELECT value FROM stats").scalar() == 20.0

    def test_update_where_subquery(self, shop):
        shop.execute("UPDATE items SET price = 0 WHERE price > "
                     "(SELECT AVG(price) FROM items)")
        assert shop.execute(
            "SELECT COUNT(*) FROM items WHERE price = 0").scalar() == 1

    def test_delete_where_in_subquery(self, shop):
        shop.execute("INSERT INTO stats VALUES ('cut', 15.0)")
        shop.execute("DELETE FROM items WHERE price < "
                     "(SELECT value FROM stats WHERE kind = 'cut')")
        assert shop.row_count("items") == 2

    def test_insert_values_with_subquery(self, shop):
        shop.execute("INSERT INTO stats VALUES "
                     "('max', (SELECT MAX(price) FROM items))")
        assert shop.execute(
            "SELECT value FROM stats WHERE kind = 'max'").scalar() == 30.0
