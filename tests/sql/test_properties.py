"""Property-based tests for the relational engine (hypothesis)."""

import datetime

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sql.engine import Database
from repro.sql.expressions import like_match

names = st.text(
    alphabet=st.characters(whitelist_categories=("Lu", "Ll"),
                           max_codepoint=0x7F),
    min_size=1, max_size=12)
ints = st.integers(min_value=-10**6, max_value=10**6)
maybe_ints = st.one_of(st.none(), ints)


def fresh_db():
    db = Database("prop")
    db.execute("CREATE TABLE t (k INT PRIMARY KEY, v INT, s VARCHAR(20))")
    return db


@given(rows=st.lists(st.tuples(ints, maybe_ints, names), max_size=30,
                     unique_by=lambda r: r[0]))
@settings(max_examples=40, deadline=None)
def test_insert_select_roundtrip(rows):
    """Everything inserted comes back unchanged via SELECT *."""
    db = fresh_db()
    for k, v, s in rows:
        db.execute("INSERT INTO t VALUES (?, ?, ?)", [k, v, s])
    result = db.execute("SELECT * FROM t")
    assert sorted(result.rows) == sorted(rows)


@given(rows=st.lists(st.tuples(ints, ints), max_size=30,
                     unique_by=lambda r: r[0]))
@settings(max_examples=40, deadline=None)
def test_order_by_is_sorted(rows):
    db = fresh_db()
    for k, v in rows:
        db.execute("INSERT INTO t (k, v) VALUES (?, ?)", [k, v])
    result = db.execute("SELECT v FROM t ORDER BY v")
    values = [r[0] for r in result.rows]
    assert values == sorted(values)


@given(rows=st.lists(st.tuples(ints, maybe_ints), max_size=30,
                     unique_by=lambda r: r[0]))
@settings(max_examples=40, deadline=None)
def test_aggregates_match_python(rows):
    """COUNT/SUM/MIN/MAX agree with Python over non-NULL values."""
    db = fresh_db()
    for k, v in rows:
        db.execute("INSERT INTO t (k, v) VALUES (?, ?)", [k, v])
    non_null = [v for __, v in rows if v is not None]
    row = db.execute("SELECT COUNT(v), SUM(v), MIN(v), MAX(v) FROM t").first()
    assert row[0] == len(non_null)
    assert row[1] == (sum(non_null) if non_null else None)
    assert row[2] == (min(non_null) if non_null else None)
    assert row[3] == (max(non_null) if non_null else None)


@given(rows=st.lists(st.tuples(ints, ints), max_size=25,
                     unique_by=lambda r: r[0]),
       threshold=ints)
@settings(max_examples=40, deadline=None)
def test_where_partition(rows, threshold):
    """WHERE v < t and WHERE v >= t partition the non-NULL rows."""
    db = fresh_db()
    for k, v in rows:
        db.execute("INSERT INTO t (k, v) VALUES (?, ?)", [k, v])
    below = db.execute("SELECT COUNT(*) FROM t WHERE v < ?",
                       [threshold]).scalar()
    at_or_above = db.execute("SELECT COUNT(*) FROM t WHERE v >= ?",
                             [threshold]).scalar()
    assert below + at_or_above == len(rows)


@given(rows=st.lists(st.tuples(ints, ints), max_size=20,
                     unique_by=lambda r: r[0]))
@settings(max_examples=30, deadline=None)
def test_distinct_matches_set(rows):
    db = fresh_db()
    for k, v in rows:
        db.execute("INSERT INTO t (k, v) VALUES (?, ?)", [k, v % 5])
    result = db.execute("SELECT DISTINCT v FROM t")
    assert len(result.rows) == len({v % 5 for __, v in rows})


@given(rows=st.lists(st.tuples(ints, ints), min_size=1, max_size=20,
                     unique_by=lambda r: r[0]))
@settings(max_examples=30, deadline=None)
def test_delete_then_count_zero(rows):
    db = fresh_db()
    for k, v in rows:
        db.execute("INSERT INTO t (k, v) VALUES (?, ?)", [k, v])
    deleted = db.execute("DELETE FROM t").rowcount
    assert deleted == len(rows)
    assert db.execute("SELECT COUNT(*) FROM t").scalar() == 0


@given(rows=st.lists(st.tuples(ints, ints), max_size=20,
                     unique_by=lambda r: r[0]))
@settings(max_examples=30, deadline=None)
def test_transaction_rollback_identity(rows):
    """Arbitrary mutations inside BEGIN..ROLLBACK leave no trace."""
    db = fresh_db()
    for k, v in rows:
        db.execute("INSERT INTO t (k, v) VALUES (?, ?)", [k, v])
    before = sorted(db.execute("SELECT * FROM t").rows)
    db.execute("BEGIN")
    db.execute("DELETE FROM t WHERE v > 0")
    db.execute("UPDATE t SET v = v - 1")
    db.execute("ROLLBACK")
    assert sorted(db.execute("SELECT * FROM t").rows) == before


@given(value=names, pattern=names)
@settings(max_examples=60, deadline=None)
def test_like_without_wildcards_is_case_insensitive_equality(value, pattern):
    assert like_match(value, pattern) == (value.lower() == pattern.lower())


@given(value=names)
@settings(max_examples=40, deadline=None)
def test_like_percent_matches_everything(value):
    assert like_match(value, "%") is True


@given(prefix=names, rest=names)
@settings(max_examples=40, deadline=None)
def test_like_prefix(prefix, rest):
    assert like_match(prefix + rest, prefix + "%") is True
