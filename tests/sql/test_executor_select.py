"""SELECT execution semantics."""

import pytest

from repro.errors import CatalogError, SqlError
from repro.sql.engine import Database


class TestBasicSelect:
    def test_select_star_order(self, people_db):
        result = people_db.execute("SELECT * FROM person WHERE id = 1")
        assert result.rows == [(1, "Alice", 34, "Brisbane")]
        assert result.columns == ["id", "name", "age", "city"]

    def test_projection_and_alias(self, people_db):
        result = people_db.execute("SELECT name AS who FROM person WHERE id = 2")
        assert result.columns == ["who"]
        assert result.scalar() == "Bob"

    def test_where_filters(self, people_db):
        result = people_db.execute("SELECT name FROM person WHERE age > 30")
        assert sorted(r[0] for r in result.rows) == ["Alice", "Carol"]

    def test_null_excluded_from_comparison(self, people_db):
        result = people_db.execute("SELECT name FROM person WHERE age < 100")
        assert "Dan" not in [r[0] for r in result.rows]

    def test_is_null(self, people_db):
        result = people_db.execute(
            "SELECT name FROM person WHERE age IS NULL")
        assert result.rows == [("Dan",)]

    def test_arithmetic_in_projection(self, people_db):
        result = people_db.execute(
            "SELECT age * 2 FROM person WHERE id = 1")
        assert result.scalar() == 68

    def test_like(self, people_db):
        result = people_db.execute(
            "SELECT name FROM person WHERE city LIKE 'bris%'")
        assert sorted(r[0] for r in result.rows) == ["Alice", "Carol"]

    def test_between(self, people_db):
        result = people_db.execute(
            "SELECT name FROM person WHERE age BETWEEN 28 AND 34 "
            "ORDER BY name")
        assert [r[0] for r in result.rows] == ["Alice", "Bob", "Eve"]

    def test_in_list(self, people_db):
        result = people_db.execute(
            "SELECT name FROM person WHERE id IN (1, 3)")
        assert sorted(r[0] for r in result.rows) == ["Alice", "Carol"]

    def test_not_in_with_null_semantics(self, people_db):
        # NULL in the probe column: the row never qualifies for NOT IN.
        result = people_db.execute(
            "SELECT name FROM person WHERE age NOT IN (28)")
        names = [r[0] for r in result.rows]
        assert "Dan" not in names
        assert "Bob" not in names and "Eve" not in names

    def test_case_expression(self, people_db):
        result = people_db.execute(
            "SELECT name, CASE WHEN age >= 40 THEN 'senior' "
            "WHEN age >= 30 THEN 'mid' ELSE 'junior' END FROM person "
            "WHERE age IS NOT NULL ORDER BY id")
        assert result.rows[0] == ("Alice", "mid")
        assert result.rows[2] == ("Carol", "senior")

    def test_unknown_column_raises(self, people_db):
        with pytest.raises(CatalogError):
            people_db.execute("SELECT missing FROM person")

    def test_ambiguous_column_raises(self, people_db):
        with pytest.raises(CatalogError):
            people_db.execute(
                "SELECT id FROM person p1, person p2")

    def test_select_without_from(self, people_db):
        assert people_db.execute("SELECT 2 + 3").scalar() == 5

    def test_division_by_zero(self, people_db):
        with pytest.raises(SqlError):
            people_db.execute("SELECT 1 / 0")


class TestOrderLimitDistinct:
    def test_order_by_desc(self, people_db):
        result = people_db.execute(
            "SELECT name FROM person WHERE age IS NOT NULL ORDER BY age DESC")
        assert [r[0] for r in result.rows][:2] == ["Carol", "Alice"]

    def test_order_by_ordinal(self, people_db):
        result = people_db.execute(
            "SELECT name, age FROM person WHERE age IS NOT NULL ORDER BY 2")
        assert result.rows[0][1] == 28

    def test_order_by_alias(self, people_db):
        result = people_db.execute(
            "SELECT age * 2 AS doubled FROM person "
            "WHERE age IS NOT NULL ORDER BY doubled DESC")
        assert result.rows[0][0] == 90

    def test_nulls_sort_first_ascending(self, people_db):
        result = people_db.execute("SELECT age FROM person ORDER BY age")
        assert result.rows[0][0] is None

    def test_multi_key_order(self, people_db):
        result = people_db.execute(
            "SELECT name, age FROM person WHERE age IS NOT NULL "
            "ORDER BY age ASC, name DESC")
        assert [r[0] for r in result.rows][:2] == ["Eve", "Bob"]

    def test_limit_offset(self, people_db):
        result = people_db.execute(
            "SELECT id FROM person ORDER BY id LIMIT 2 OFFSET 1")
        assert [r[0] for r in result.rows] == [2, 3]

    def test_limit_with_param(self, people_db):
        result = people_db.execute(
            "SELECT id FROM person ORDER BY id LIMIT ?", [3])
        assert len(result.rows) == 3

    def test_distinct(self, people_db):
        result = people_db.execute("SELECT DISTINCT age FROM person")
        ages = [r[0] for r in result.rows]
        assert ages.count(28) == 1

    def test_negative_limit_rejected(self, people_db):
        with pytest.raises(SqlError):
            people_db.execute("SELECT id FROM person LIMIT ?", [-1])


class TestAggregates:
    def test_count_star(self, people_db):
        assert people_db.execute(
            "SELECT COUNT(*) FROM person").scalar() == 5

    def test_count_column_skips_nulls(self, people_db):
        assert people_db.execute(
            "SELECT COUNT(age) FROM person").scalar() == 4

    def test_count_distinct(self, people_db):
        assert people_db.execute(
            "SELECT COUNT(DISTINCT age) FROM person").scalar() == 3

    def test_sum_avg_min_max(self, people_db):
        row = people_db.execute(
            "SELECT SUM(age), AVG(age), MIN(age), MAX(age) "
            "FROM person").first()
        assert row == (135, 33.75, 28, 45)

    def test_aggregate_on_empty_input(self, people_db):
        row = people_db.execute(
            "SELECT COUNT(*), SUM(age), MAX(name) FROM person "
            "WHERE id > 100").first()
        assert row == (0, None, None)

    def test_group_by(self, people_db):
        result = people_db.execute(
            "SELECT city, COUNT(*) FROM person WHERE city IS NOT NULL "
            "GROUP BY city ORDER BY city")
        assert result.rows == [("Brisbane", 2), ("Cairns", 1), ("Sydney", 1)]

    def test_group_by_alias(self, people_db):
        result = people_db.execute(
            "SELECT CASE WHEN age IS NULL THEN 'x' ELSE 'y' END AS bucket, "
            "COUNT(*) FROM person GROUP BY bucket ORDER BY bucket")
        assert result.rows == [("x", 1), ("y", 4)]

    def test_having(self, people_db):
        result = people_db.execute(
            "SELECT city, COUNT(*) c FROM person GROUP BY city "
            "HAVING COUNT(*) > 1")
        assert result.rows == [("Brisbane", 2)]

    def test_order_by_aggregate(self, people_db):
        result = people_db.execute(
            "SELECT city, COUNT(*) FROM person WHERE city IS NOT NULL "
            "GROUP BY city ORDER BY COUNT(*) DESC")
        assert result.rows[0][0] == "Brisbane"

    def test_aggregate_outside_group_context_raises(self, people_db):
        with pytest.raises(SqlError):
            people_db.execute("SELECT name FROM person WHERE SUM(age) > 1")


class TestJoins:
    def test_inner_join(self, people_db):
        result = people_db.execute(
            "SELECT p.name, o.amount FROM person p "
            "JOIN orders o ON p.id = o.person_id ORDER BY o.order_id")
        assert result.rows[0] == ("Alice", 120.5)
        assert len(result.rows) == 4

    def test_left_join_pads_nulls(self, people_db):
        result = people_db.execute(
            "SELECT p.name, o.order_id FROM person p "
            "LEFT JOIN orders o ON p.id = o.person_id "
            "WHERE o.order_id IS NULL ORDER BY p.name")
        assert [r[0] for r in result.rows] == ["Dan", "Eve"]

    def test_right_join(self, people_db):
        result = people_db.execute(
            "SELECT p.name, o.order_id FROM orders o "
            "RIGHT JOIN person p ON p.id = o.person_id "
            "WHERE o.order_id IS NULL ORDER BY p.name")
        assert [r[0] for r in result.rows] == ["Dan", "Eve"]

    def test_cross_join_cardinality(self, people_db):
        result = people_db.execute(
            "SELECT COUNT(*) FROM person, orders")
        assert result.scalar() == 20

    def test_join_using_merges_column(self, people_db):
        people_db.execute("CREATE TABLE extra (id INT, nickname VARCHAR(20))")
        people_db.execute("INSERT INTO extra VALUES (1, 'Al'), (2, 'Bobby')")
        result = people_db.execute(
            "SELECT id, name, nickname FROM person JOIN extra USING (id) "
            "ORDER BY id")
        assert result.rows == [(1, "Alice", "Al"), (2, "Bob", "Bobby")]

    def test_join_group_aggregate(self, people_db):
        result = people_db.execute(
            "SELECT p.name, SUM(o.amount) total FROM person p "
            "JOIN orders o ON p.id = o.person_id "
            "GROUP BY p.name ORDER BY total DESC")
        assert result.rows[0] == ("Carol", 430.0)
        assert result.rows[1] == ("Alice", 195.5)

    def test_self_join(self, people_db):
        result = people_db.execute(
            "SELECT COUNT(*) FROM person a JOIN person b ON a.age = b.age "
            "WHERE a.id < b.id")
        assert result.scalar() == 1  # Bob & Eve share age 28


class TestSubqueries:
    def test_in_subquery(self, people_db):
        result = people_db.execute(
            "SELECT name FROM person WHERE id IN "
            "(SELECT person_id FROM orders WHERE amount > 100)")
        assert sorted(r[0] for r in result.rows) == ["Alice", "Carol"]

    def test_exists_correlated(self, people_db):
        result = people_db.execute(
            "SELECT name FROM person p WHERE EXISTS "
            "(SELECT 1 FROM orders o WHERE o.person_id = p.id)")
        assert sorted(r[0] for r in result.rows) == ["Alice", "Bob", "Carol"]

    def test_not_exists(self, people_db):
        result = people_db.execute(
            "SELECT name FROM person p WHERE NOT EXISTS "
            "(SELECT 1 FROM orders o WHERE o.person_id = p.id) "
            "ORDER BY name")
        assert [r[0] for r in result.rows] == ["Dan", "Eve"]

    def test_scalar_subquery_correlated(self, people_db):
        result = people_db.execute(
            "SELECT name, (SELECT COUNT(*) FROM orders o "
            "WHERE o.person_id = p.id) FROM person p ORDER BY id")
        assert result.rows[0] == ("Alice", 2)
        assert result.rows[3] == ("Dan", 0)

    def test_scalar_subquery_multiple_rows_raises(self, people_db):
        with pytest.raises(SqlError):
            people_db.execute(
                "SELECT (SELECT id FROM person) FROM person")

    def test_derived_table(self, people_db):
        result = people_db.execute(
            "SELECT big.name FROM "
            "(SELECT name, age FROM person WHERE age > 30) big "
            "ORDER BY big.age DESC")
        assert [r[0] for r in result.rows] == ["Carol", "Alice"]


class TestUnion:
    def test_union_dedupes(self, people_db):
        result = people_db.execute(
            "SELECT city FROM person WHERE city = 'Brisbane' "
            "UNION SELECT city FROM person WHERE city = 'Brisbane'")
        assert len(result.rows) == 1

    def test_union_all_keeps_duplicates(self, people_db):
        result = people_db.execute(
            "SELECT city FROM person WHERE city = 'Brisbane' "
            "UNION ALL SELECT city FROM person WHERE city = 'Brisbane'")
        assert len(result.rows) == 4

    def test_union_arity_mismatch(self, people_db):
        with pytest.raises(SqlError):
            people_db.execute(
                "SELECT id FROM person UNION SELECT id, name FROM person")

    def test_union_order_and_limit(self, people_db):
        result = people_db.execute(
            "SELECT id FROM person UNION SELECT order_id FROM orders "
            "ORDER BY 1 DESC LIMIT 3")
        assert [r[0] for r in result.rows] == [13, 12, 11]


class TestIndexUsage:
    def test_index_lookup_used(self):
        db = Database("indexed")
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, v VARCHAR(10))")
        db.executemany("INSERT INTO t VALUES (?, ?)",
                       [[i, f"v{i}"] for i in range(100)])
        # Primary key probes return the right row.
        result = db.execute("SELECT v FROM t WHERE id = 42")
        assert result.scalar() == "v42"

    def test_secondary_index_consistency(self):
        db = Database("indexed2")
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, grp INT)")
        db.executemany("INSERT INTO t VALUES (?, ?)",
                       [[i, i % 5] for i in range(50)])
        db.execute("CREATE INDEX idx_grp ON t (grp)")
        via_index = db.execute("SELECT COUNT(*) FROM t WHERE grp = 3")
        assert via_index.scalar() == 10
        # after deletes, the index stays consistent
        db.execute("DELETE FROM t WHERE id < 25")
        assert db.execute("SELECT COUNT(*) FROM t WHERE grp = 3").scalar() == 5

    def test_index_with_param_probe(self):
        db = Database("indexed3")
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        db.executemany("INSERT INTO t VALUES (?, ?)",
                       [[i, i * i] for i in range(20)])
        assert db.execute("SELECT v FROM t WHERE id = ?", [7]).scalar() == 49


class TestNegatedPredicates:
    def test_not_like(self, people_db):
        result = people_db.execute(
            "SELECT name FROM person WHERE name NOT LIKE 'A%' "
            "ORDER BY name")
        assert [r[0] for r in result.rows] == ["Bob", "Carol", "Dan", "Eve"]

    def test_not_between(self, people_db):
        result = people_db.execute(
            "SELECT name FROM person WHERE age NOT BETWEEN 28 AND 34")
        assert [r[0] for r in result.rows] == ["Carol"]

    def test_not_like_null_operand_excluded(self, people_db):
        result = people_db.execute(
            "SELECT name FROM person WHERE city NOT LIKE 'Z%'")
        assert "Eve" not in [r[0] for r in result.rows]  # NULL city

    def test_logical_not_wraps_predicate(self, people_db):
        result = people_db.execute(
            "SELECT name FROM person WHERE NOT (age > 30) ORDER BY name")
        assert [r[0] for r in result.rows] == ["Bob", "Eve"]

    def test_concat_with_null_is_null(self, people_db):
        result = people_db.execute(
            "SELECT name || city FROM person WHERE id = 5")
        assert result.scalar() is None
