"""EXPLAIN plan descriptions."""

import pytest

from repro.sql.engine import Database


@pytest.fixture()
def db():
    db = Database("ex")
    db.execute("CREATE TABLE t (id INT PRIMARY KEY, grp INT, v REAL)")
    db.execute("CREATE TABLE u (id INT PRIMARY KEY, name VARCHAR(10))")
    db.execute("CREATE INDEX idx_grp ON t (grp)")
    return db


def plan_lines(db, sql):
    return [row[0] for row in db.execute(f"EXPLAIN {sql}").rows]


class TestExplain:
    def test_seq_scan(self, db):
        lines = plan_lines(db, "SELECT * FROM t")
        assert lines[0] == "Select"
        assert lines[1] == "  SeqScan(t)"

    def test_pk_index_lookup(self, db):
        lines = plan_lines(db, "SELECT * FROM t WHERE id = 5")
        assert "  IndexLookup(t) key=(id)" in lines

    def test_secondary_index_lookup_with_residual(self, db):
        lines = plan_lines(db, "SELECT * FROM t WHERE grp = 2 AND v > 1")
        assert "  IndexLookup(t) key=(grp)" in lines
        assert any("Filter: t" not in line and "Filter:" in line
                   for line in lines)

    def test_hash_join(self, db):
        lines = plan_lines(db, "SELECT * FROM t JOIN u ON t.id = u.id")
        assert any("HashJoin[INNER] on t.id = u.id" in line
                   for line in lines)

    def test_nested_loop_for_inequality(self, db):
        lines = plan_lines(db, "SELECT * FROM t JOIN u ON t.id < u.id")
        assert any("NestedLoop[INNER]" in line for line in lines)

    def test_aggregate_and_sort_lines(self, db):
        lines = plan_lines(
            db, "SELECT grp, COUNT(*) FROM t GROUP BY grp "
                "ORDER BY grp DESC LIMIT 3")
        assert "  Aggregate: group by grp" in lines
        assert "  Sort: grp DESC" in lines
        assert "  Limit: 3" in lines

    def test_scalar_aggregate(self, db):
        lines = plan_lines(db, "SELECT COUNT(*) FROM t")
        assert "  Aggregate: scalar" in lines

    def test_union(self, db):
        lines = plan_lines(db, "SELECT id FROM t UNION ALL SELECT id FROM u")
        assert lines[0] == "Union[ALL]"

    def test_view_expands_to_derived(self, db):
        db.execute("CREATE VIEW vw AS SELECT id FROM t WHERE v > 0")
        lines = plan_lines(db, "SELECT * FROM vw")
        assert any("Derived(vw)" in line for line in lines)
        assert any("SeqScan(t)" in line for line in lines)

    def test_dml_explained(self, db):
        assert plan_lines(db, "DELETE FROM t WHERE id = 1") == ["Delete(t)"]
        assert plan_lines(db, "UPDATE t SET v = 0") == ["Update(t)"]

    def test_alias_shown(self, db):
        lines = plan_lines(db, "SELECT * FROM t alias")
        assert "  SeqScan(t) as alias" in lines

    def test_explain_does_not_execute(self, db):
        db.execute("INSERT INTO t VALUES (1, 1, 1.0)")
        db.execute("EXPLAIN DELETE FROM t")
        assert db.row_count("t") == 1
