"""SQL parser unit tests."""

import pytest

from repro.errors import SqlSyntaxError
from repro.sql import ast
from repro.sql.parser import parse, parse_script


class TestSelect:
    def test_select_star(self):
        statement = parse("SELECT * FROM t")
        assert isinstance(statement, ast.Select)
        assert isinstance(statement.items[0].expression, ast.Star)
        assert statement.from_item.name == "t"

    def test_table_star(self):
        statement = parse("SELECT t.* FROM t")
        assert statement.items[0].expression.table == "t"

    def test_column_alias_with_as(self):
        statement = parse("SELECT name AS n FROM t")
        assert statement.items[0].alias == "n"

    def test_column_alias_bare(self):
        statement = parse("SELECT name n FROM t")
        assert statement.items[0].alias == "n"

    def test_qualified_column(self):
        statement = parse("SELECT t.name FROM t")
        ref = statement.items[0].expression
        assert ref.table == "t" and ref.name == "name"

    def test_where_clause(self):
        statement = parse("SELECT a FROM t WHERE a > 3 AND b = 'x'")
        assert isinstance(statement.where, ast.Binary)
        assert statement.where.op == "AND"

    def test_distinct(self):
        assert parse("SELECT DISTINCT a FROM t").distinct

    def test_group_by_having(self):
        statement = parse(
            "SELECT city, COUNT(*) FROM t GROUP BY city HAVING COUNT(*) > 1")
        assert len(statement.group_by) == 1
        assert isinstance(statement.having, ast.Binary)

    def test_order_by_directions(self):
        statement = parse("SELECT a FROM t ORDER BY a DESC, b ASC, c")
        directions = [item.ascending for item in statement.order_by]
        assert directions == [False, True, True]

    def test_limit_offset(self):
        statement = parse("SELECT a FROM t LIMIT 10 OFFSET 5")
        assert statement.limit.value == 10
        assert statement.offset.value == 5

    def test_select_without_from(self):
        statement = parse("SELECT 1 + 2")
        assert statement.from_item is None

    def test_union(self):
        statement = parse("SELECT a FROM t UNION SELECT b FROM u")
        assert isinstance(statement, ast.Union)
        assert not statement.all

    def test_union_all_order(self):
        statement = parse(
            "SELECT a FROM t UNION ALL SELECT b FROM u ORDER BY 1")
        assert statement.all
        assert len(statement.order_by) == 1


class TestJoins:
    def test_inner_join_on(self):
        statement = parse("SELECT * FROM a JOIN b ON a.id = b.id")
        join = statement.from_item
        assert isinstance(join, ast.Join)
        assert join.kind == "INNER"
        assert isinstance(join.condition, ast.Binary)

    def test_left_outer_join(self):
        join = parse("SELECT * FROM a LEFT OUTER JOIN b ON a.x = b.x").from_item
        assert join.kind == "LEFT"

    def test_right_join(self):
        join = parse("SELECT * FROM a RIGHT JOIN b ON a.x = b.x").from_item
        assert join.kind == "RIGHT"

    def test_cross_join(self):
        join = parse("SELECT * FROM a CROSS JOIN b").from_item
        assert join.kind == "CROSS"
        assert join.condition is None

    def test_comma_join_is_cross(self):
        join = parse("SELECT * FROM a, b").from_item
        assert join.kind == "CROSS"

    def test_join_using(self):
        join = parse("SELECT * FROM a JOIN b USING (id, kind)").from_item
        assert join.using == ["id", "kind"]

    def test_join_requires_condition(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT * FROM a JOIN b")

    def test_derived_table(self):
        statement = parse("SELECT * FROM (SELECT a FROM t) sub")
        assert isinstance(statement.from_item, ast.SubqueryRef)
        assert statement.from_item.alias == "sub"

    def test_chained_joins(self):
        join = parse(
            "SELECT * FROM a JOIN b ON a.x = b.x JOIN c ON b.y = c.y"
        ).from_item
        assert isinstance(join.left, ast.Join)


class TestExpressions:
    def _expr(self, text):
        return parse(f"SELECT {text}").items[0].expression

    def test_precedence_arithmetic(self):
        expr = self._expr("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_precedence_and_or(self):
        expr = parse("SELECT a FROM t WHERE x = 1 OR y = 2 AND z = 3").where
        assert expr.op == "OR"
        assert expr.right.op == "AND"

    def test_not(self):
        expr = parse("SELECT a FROM t WHERE NOT x = 1").where
        assert isinstance(expr, ast.Unary)
        assert expr.op == "NOT"

    def test_unary_minus(self):
        expr = self._expr("-5")
        assert isinstance(expr, ast.Unary)

    def test_is_null_and_not_null(self):
        null_check = parse("SELECT a FROM t WHERE x IS NULL").where
        assert isinstance(null_check, ast.IsNull) and not null_check.negated
        not_null = parse("SELECT a FROM t WHERE x IS NOT NULL").where
        assert not_null.negated

    def test_in_list(self):
        expr = parse("SELECT a FROM t WHERE x IN (1, 2, 3)").where
        assert isinstance(expr, ast.InList)
        assert len(expr.items) == 3

    def test_not_in_subquery(self):
        expr = parse(
            "SELECT a FROM t WHERE x NOT IN (SELECT y FROM u)").where
        assert isinstance(expr, ast.InSubquery) and expr.negated

    def test_between(self):
        expr = parse("SELECT a FROM t WHERE x BETWEEN 1 AND 10").where
        assert isinstance(expr, ast.Between)

    def test_like(self):
        expr = parse("SELECT a FROM t WHERE name LIKE 'A%'").where
        assert isinstance(expr, ast.Like)

    def test_exists(self):
        expr = parse(
            "SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u)").where
        assert isinstance(expr, ast.Exists)

    def test_scalar_subquery(self):
        expr = self._expr("(SELECT MAX(x) FROM t)")
        assert isinstance(expr, ast.ScalarSubquery)

    def test_case_searched(self):
        expr = self._expr("CASE WHEN x > 0 THEN 'pos' ELSE 'neg' END")
        assert isinstance(expr, ast.Case)
        assert expr.operand is None

    def test_case_simple(self):
        expr = self._expr("CASE x WHEN 1 THEN 'one' END")
        assert expr.operand is not None

    def test_case_requires_when(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT CASE END")

    def test_count_star(self):
        expr = self._expr("COUNT(*)")
        assert isinstance(expr, ast.FunctionCall)
        assert isinstance(expr.args[0], ast.Star)

    def test_count_distinct(self):
        expr = self._expr("COUNT(DISTINCT x)")
        assert expr.distinct

    def test_scalar_function(self):
        expr = self._expr("UPPER(name)")
        assert expr.name == "UPPER"

    def test_params_numbered_left_to_right(self):
        statement = parse("SELECT a FROM t WHERE x = ? AND y = ?")
        conjuncts = statement.where
        assert conjuncts.left.right.index == 0
        assert conjuncts.right.right.index == 1

    def test_string_concat(self):
        expr = self._expr("'a' || 'b'")
        assert expr.op == "||"

    def test_boolean_literals(self):
        assert self._expr("TRUE").value is True
        assert self._expr("NULL").value is None


class TestDml:
    def test_insert_values(self):
        statement = parse("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
        assert isinstance(statement, ast.Insert)
        assert len(statement.rows) == 2
        assert statement.columns is None

    def test_insert_with_columns(self):
        statement = parse("INSERT INTO t (a, b) VALUES (1, 2)")
        assert statement.columns == ["a", "b"]

    def test_insert_select(self):
        statement = parse("INSERT INTO t SELECT a FROM u")
        assert statement.select is not None

    def test_insert_requires_values_or_select(self):
        with pytest.raises(SqlSyntaxError):
            parse("INSERT INTO t")

    def test_update(self):
        statement = parse("UPDATE t SET a = 1, b = b + 1 WHERE id = 3")
        assert isinstance(statement, ast.Update)
        assert len(statement.assignments) == 2

    def test_delete(self):
        statement = parse("DELETE FROM t WHERE a < 0")
        assert isinstance(statement, ast.Delete)

    def test_delete_without_where(self):
        assert parse("DELETE FROM t").where is None


class TestDdlAndTransactions:
    def test_create_table(self):
        statement = parse(
            "CREATE TABLE t (id INT PRIMARY KEY, name VARCHAR(40) NOT NULL)")
        assert isinstance(statement, ast.CreateTable)
        assert statement.columns[0].primary_key
        assert statement.columns[1].not_null

    def test_create_table_if_not_exists(self):
        assert parse("CREATE TABLE IF NOT EXISTS t (a INT)").if_not_exists

    def test_table_level_primary_key(self):
        statement = parse("CREATE TABLE t (a INT, b INT, PRIMARY KEY (a, b))")
        assert statement.primary_key == ["a", "b"]

    def test_create_unique_index(self):
        statement = parse("CREATE UNIQUE INDEX i ON t (a)")
        assert isinstance(statement, ast.CreateIndex)
        assert statement.unique

    def test_drop_table_if_exists(self):
        statement = parse("DROP TABLE IF EXISTS t")
        assert isinstance(statement, ast.DropTable)
        assert statement.if_exists

    def test_drop_index(self):
        assert isinstance(parse("DROP INDEX i"), ast.DropIndex)

    def test_transactions(self):
        assert isinstance(parse("BEGIN"), ast.BeginTransaction)
        assert isinstance(parse("COMMIT WORK"), ast.Commit)
        assert isinstance(parse("ROLLBACK TRANSACTION"), ast.Rollback)

    def test_script_parsing(self):
        statements = parse_script(
            "CREATE TABLE t (a INT); INSERT INTO t VALUES (1); "
            "SELECT * FROM t;")
        assert len(statements) == 3

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT a FROM t garbage extra ,")

    def test_unknown_statement(self):
        with pytest.raises(SqlSyntaxError):
            parse("VACUUM t")

    def test_explain_parses(self):
        statement = parse("EXPLAIN SELECT 1")
        assert isinstance(statement, ast.Explain)
