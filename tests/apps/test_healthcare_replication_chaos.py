"""Chaos acceptance for the availability layer (docs/availability.md).

With two replica servants per co-database, killing any *single*
replica — primary or backup, before or in the middle of a BFS — must
be invisible: the degraded report stays empty and the leads match a
never-faulted run exactly.  Only killing *every* replica of a source
reproduces the single-servant degraded report the resilience layer
already guarantees.

CI's tier-2 job sweeps CHAOS_SEED over {7, 23, 1999}; the kill-mode
matrix (primary / backup / kill-then-restart) is parametrized here.
"""

import random

import pytest

from repro.apps.healthcare import build_healthcare_system
from repro.apps.healthcare import topology as topo
from repro.core.resilience import (HealthBoard, ResiliencePolicy,
                                   RetryPolicy)
from repro.orb.faults import ANY, FaultyTransport
from repro.orb.transport import InMemoryNetwork

QUERY = "Medical Insurance"
DEADLINE = 5.0
REPLICAS = 2
FAILURE_COUNT = 3  # sources fully killed in the all-replicas scenario


def build_replicated(seed, transport=None):
    policy = ResiliencePolicy(
        retry=RetryPolicy(max_attempts=2, base_delay=0.001,
                          max_delay=0.01, seed=seed),
        health=HealthBoard(failure_threshold=3))
    return build_healthcare_system(transport=transport, resilience=policy,
                                   replication_factor=REPLICAS)


def sweep(deployment, **kwargs):
    engine = deployment.system.query_processor().discovery
    try:
        return engine.discover(QUERY, topo.QUT, stop_at_first=False,
                               max_hops=6, **kwargs)
    finally:
        engine.close()


def pick_dead(seed):
    candidates = [name for name in topo.ALL_DATABASES if name != topo.QUT]
    return set(random.Random(seed).sample(candidates, FAILURE_COUNT))


@pytest.fixture(scope="module")
def healthy_leads():
    """Leads of an unfaulted replicated run (the ground truth)."""
    result = sweep(build_replicated(seed=0))
    return {lead.name: list(lead.via) for lead in result.leads}


@pytest.mark.chaos
@pytest.mark.parametrize("kill_index, mid_flight", [
    (0, False),   # primary dead before the BFS starts
    (1, False),   # backup dead before the BFS starts
    (0, True),    # primary dies mid-discovery (endpoint starts refusing
                  # after a seeded number of requests)
], ids=["kill-primary", "kill-backup", "kill-primary-mid-bfs"])
def test_single_replica_loss_is_invisible(healthy_leads, chaos_seed,
                                          kill_index, mid_flight):
    faulty = FaultyTransport(InMemoryNetwork(), seed=chaos_seed)
    deployment = build_replicated(chaos_seed, transport=faulty)
    faulty.delay(ANY, latency=0.0005, jitter=0.0005)
    rng = random.Random(chaos_seed)
    for name in topo.ALL_DATABASES:
        endpoint = deployment.codatabase_replica_endpoint(name, kill_index)
        after = rng.randint(1, 4) if mid_flight else 0
        faulty.refuse(endpoint, after=after)

    result = sweep(deployment, deadline=DEADLINE)

    # One dead replica per source must not cost a single lead ...
    assert {lead.name for lead in result.leads} == set(healthy_leads)
    # ... nor put anything in the degraded report.
    assert list(result.degraded.names()) == []
    assert result.unreachable == []


@pytest.mark.chaos
def test_all_replicas_down_reproduces_the_degraded_report(healthy_leads,
                                                          chaos_seed):
    """Killing every replica of a source is a dead source: the degraded
    report must blame it, exactly as in the single-servant federation."""
    dead = pick_dead(chaos_seed)
    faulty = FaultyTransport(InMemoryNetwork(), seed=chaos_seed)
    deployment = build_replicated(chaos_seed, transport=faulty)
    for name in dead:
        for index in range(REPLICAS):
            faulty.refuse(
                deployment.codatabase_replica_endpoint(name, index))

    result = sweep(deployment, deadline=DEADLINE)

    found = {lead.name for lead in result.leads}
    for lead_name, via in healthy_leads.items():
        if not (set(via) & dead):
            assert lead_name in found, \
                f"{lead_name} reachable via healthy path {via} but lost"
    blamed = set(result.degraded.names())
    assert blamed <= dead
    assert set(result.unreachable) <= blamed
    for via in healthy_leads.values():
        for index, database in enumerate(via):
            if database in dead and not (set(via[:index]) & dead):
                assert database in blamed


@pytest.mark.chaos
def test_kill_then_restart_during_bfs(healthy_leads, chaos_seed):
    """A replica killed between sweeps and restarted must rejoin with
    no journal lag, heal stale proxies in place, and leave later sweeps
    indistinguishable from healthy ones."""
    deployment = build_replicated(chaos_seed)
    system = deployment.system
    rng = random.Random(chaos_seed)
    victims = rng.sample(sorted(set(topo.ALL_DATABASES) - {topo.QUT}), 3)

    for victim in victims:
        system.kill_replica(victim, 0)
    degraded_sweep = sweep(deployment, deadline=DEADLINE)
    # Backups carried the victims: nothing lost, nothing degraded.
    assert {lead.name for lead in degraded_sweep.leads} \
        == set(healthy_leads)
    assert list(degraded_sweep.degraded.names()) == []

    # Maintenance writes land while the replicas are down ...
    for victim in victims:
        system.attach_document(victim, "text", f"written while {victim} r0 "
                                               f"was down")
    # ... and recovery catches every victim up (journal + anti-entropy).
    for victim in victims:
        system.restart_replica(victim, 0)
        status = system.replica_status(victim)
        assert all(r["alive"] and r["lag"] == 0
                   for r in status["replicas"]), victim

    healed_sweep = sweep(deployment, deadline=DEADLINE)
    assert {lead.name for lead in healed_sweep.leads} == set(healthy_leads)
    assert list(healed_sweep.degraded.names()) == []
    # The restarted primaries really serve: reads through a fresh
    # client reach r0 (closed breaker, fresh binding generation).
    for victim in victims:
        client = system.codatabase_client(victim)
        contents = [d["content"] for d in client.documents_of(victim)]
        assert f"written while {victim} r0 was down" in contents
        assert client.failovers == 0
