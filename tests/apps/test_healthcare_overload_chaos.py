"""Chaos acceptance: overload behaviour of the federation.

Two scenarios, both seeded (``CHAOS_SEED``) and both honouring the
transport-mode and shedding env switches the CI tier-2 matrix sweeps
(``REPRO_TRANSPORT_LOOP``, ``REPRO_SHEDDING``):

* **busy faults** — co-databases that shed every request with a BUSY
  reply must degrade discovery, not crash it, and the retry *budget*
  must keep total retry volume a bounded fraction of offered load no
  matter how tempting the retries are.
* **request storm** — a burst far past a tiny server's capacity, every
  request carrying a deadline.  With shedding enabled the server
  refuses work it cannot finish in budget (and the counters show it);
  with shedding disabled the admission layer must be provably inert.
"""

import os
import random
import threading
import time

import pytest

from repro.apps.healthcare import build_healthcare_system
from repro.apps.healthcare import topology as topo
from repro.core.resilience import (HealthBoard, ResiliencePolicy,
                                   RetryBudget, RetryPolicy)
from repro.deadline import Deadline, call_policy
from repro.errors import CommFailure, DeadlineExceeded, ServerBusy
from repro.orb import (ORBIX, VISIBROKER, InMemoryNetwork, InterfaceBuilder,
                       TcpTransport, create_orb)
from repro.orb.faults import FaultyTransport

QUERY = "Medical Insurance"
BUSY_COUNT = 3
RETRY_RATIO = 0.1
RETRY_BURST = 1.0

STORM_CLIENTS = 60
STORM_DEADLINE = 0.25
SERVICE_TIME = 0.02
WORKERS = 2

ECHO = InterfaceBuilder("Echo").operation("echo", "value").build()


def _shedding_enabled():
    return os.environ.get("REPRO_SHEDDING", "0") == "1"


@pytest.mark.chaos
def test_busy_faults_cap_retry_volume(chaos_seed):
    """BUSY-shedding sources degrade discovery; retries stay budgeted."""
    candidates = [name for name in topo.ALL_DATABASES if name != topo.QUT]
    busy_set = set(random.Random(chaos_seed).sample(candidates, BUSY_COUNT))
    faulty = FaultyTransport(InMemoryNetwork(), seed=chaos_seed)
    budget = RetryBudget(ratio=RETRY_RATIO, burst=RETRY_BURST)
    policy = ResiliencePolicy(
        retry=RetryPolicy(max_attempts=3, base_delay=0.001,
                          max_delay=0.01, seed=chaos_seed, budget=budget),
        health=HealthBoard(failure_threshold=3))
    deployment = build_healthcare_system(
        transport=faulty, resilience=policy, isolate_sources=True)
    for name in busy_set:
        faulty.busy(deployment.codatabase_endpoint(name))

    engine = deployment.system.query_processor().discovery
    try:
        result = engine.discover(QUERY, topo.QUT, stop_at_first=False,
                                 max_hops=6)
    finally:
        engine.close()

    # The federation answered from its healthy part: shedding servers
    # are degradation, not a crash.
    assert result.leads is not None
    assert set(result.degraded.names()) <= busy_set
    assert faulty.injected["busy"] > 0

    # The acceptance invariant: total retry volume never exceeds the
    # budget fraction of offered load (plus one initial burst per
    # shedding source) — no retry storm amplifies the overload.
    snapshot = budget.snapshot()
    assert snapshot["granted"] <= \
        RETRY_RATIO * snapshot["attempts"] + RETRY_BURST * BUSY_COUNT, \
        snapshot
    assert policy.retry.retries == snapshot["granted"]
    # With every request to a busy source refused, the budget must
    # actually have refused retries, not merely never been asked.
    assert snapshot["denied"] > 0


class SlowEchoServant:
    def echo(self, value):
        time.sleep(SERVICE_TIME)
        return value


@pytest.mark.chaos
def test_request_storm_respects_shedding_configuration(chaos_seed):
    """A burst at ~6x capacity: shed when asked to, stay inert when not.

    Transport mode (threaded/event loop) and shedding come from the
    environment, so the CI matrix drives all four combinations through
    this one test body.
    """
    transport = TcpTransport(pipelined=True, stripes=1,
                             pipeline_depth=2 * STORM_CLIENTS,
                             connection_workers=WORKERS,
                             loop_workers=WORKERS, timeout=5.0)
    budget = RetryBudget(ratio=RETRY_RATIO, burst=10.0)
    outcomes = {"ok": 0, "shed": 0, "expired": 0, "comm": 0}
    lock = threading.Lock()
    try:
        server = create_orb(ORBIX, transport, host="127.0.0.1", port=0)
        client = create_orb(VISIBROKER, transport, host="127.0.0.1", port=0)
        proxy = client.proxy(server.activate(SlowEchoServant(), ECHO), ECHO)
        proxy.echo("warm")  # connection setup outside the storm
        barrier = threading.Barrier(STORM_CLIENTS)

        def caller(index):
            barrier.wait()
            try:
                with call_policy(deadline=Deadline(STORM_DEADLINE),
                                 idempotent=True, retry_budget=budget):
                    assert proxy.echo(index) == index
            except ServerBusy:
                bucket = "shed"
            except DeadlineExceeded:
                bucket = "expired"
            except CommFailure:
                bucket = "comm"
            else:
                bucket = "ok"
            with lock:
                outcomes[bucket] += 1

        threads = [threading.Thread(target=caller, args=(index,))
                   for index in range(STORM_CLIENTS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert sum(outcomes.values()) == STORM_CLIENTS
        # Clients that missed their deadline gave up *client-side*; the
        # server is still working through the backlog and only sheds
        # their corpses at dequeue.  Let the queue drain before reading
        # the counters (a no-op when admission is disabled: pending 0).
        drain_until = time.monotonic() + 10.0
        while transport.admission.pending > 0 \
                and time.monotonic() < drain_until:
            time.sleep(0.02)
        shed = transport.metrics.requests_shed
        expired = transport.metrics.requests_expired
        if _shedding_enabled():
            # Overloaded and allowed to defend itself: the deadline-
            # aware admission layer refused work it could not finish,
            # and what it did accept largely completed in budget.
            assert shed + expired > 0, transport.admission.snapshot()
            assert outcomes["ok"] >= STORM_CLIENTS // 4, outcomes
        else:
            # The seed's behaviour, bit for bit: admission never even
            # consulted, nothing shed, overload felt only as client-side
            # deadline misses.
            assert shed == 0 and expired == 0
            assert transport.admission.snapshot()["admitted"] == 0
        # Either way the storm's transparent resends stayed budgeted.
        snapshot = budget.snapshot()
        assert snapshot["granted"] <= \
            RETRY_RATIO * snapshot["attempts"] + 10.0, snapshot
    finally:
        transport.close()
