"""End-to-end reproduction of the paper's walkthroughs (Figures 4-6, §2.3).

Each test follows the paper's text and asserts the same observable
outcome our stand-in testbed produces.
"""

import pytest

from repro.apps.healthcare import RBH_HTML_DOCUMENT
from repro.apps.healthcare import topology as topo
from repro.apps.healthcare.data import (AIDS_PROJECT_FUNDING,
                                        AIDS_PROJECT_TITLE)


@pytest.fixture()
def browser(healthcare):
    """'One of the researchers at QUT research queries WebFINDIT...'"""
    return healthcare.browser(topo.QUT)


class TestSection23Walkthrough:
    def test_find_medical_research_resolves_locally(self, browser):
        """'WebFINDIT starts from the coalitions the QUT research is
        member of ... the local coalition Research deals with this type
        of information.'"""
        result = browser.find("Medical Research")
        assert result.data.best().name == "Research"
        assert result.data.codatabases_contacted == 1

    def test_connect_then_refine(self, browser):
        browser.connect_coalition("Research")
        subclasses = browser.subclasses("Research")
        assert subclasses.data == []  # flat in the healthcare world
        instances = browser.instances("Research")
        assert topo.RBH in {d.name for d in instances.data}

    def test_display_documentation_of_rbh(self, browser):
        result = browser.documentation(topo.RBH, "Research")
        assert result.data["description"].documentation_url == \
            "http://www.medicine.uq.edu.au/RBH"

    def test_access_information_matches_advertisement(self, browser):
        """The paper: 'The database Royal Brisbane Hospital is located
        at dba.icis.qut.edu.au and exports the following type...'"""
        result = browser.access_information(topo.RBH)
        assert result.data.location == "dba.icis.qut.edu.au"
        assert result.data.interface == ["ResearchProjects",
                                         "PatientHistory"]

    def test_exported_interface_shows_funding_function(self, browser):
        result = browser.interface(topo.RBH)
        assert "function real Funding(title);" in result.text
        assert "attribute string ResearchProjects.Title;" in result.text

    def test_funding_invocation_and_sql_translation(self, browser,
                                                    healthcare):
        """'This function is translated to the following SQL query:
        Select a.Funding From ResearchProjects a
        Where a.Title = "AIDS and drugs"'"""
        result = browser.invoke(topo.RBH, "ResearchProjects", "Funding",
                                AIDS_PROJECT_TITLE)
        assert result.data == AIDS_PROJECT_FUNDING
        wrapper = healthcare.system.local_wrapper(topo.RBH)
        sql = wrapper.generate_sql("ResearchProjects", "Funding",
                                   [AIDS_PROJECT_TITLE])
        assert sql == ("SELECT a.Funding FROM ResearchProjects a "
                       "WHERE a.Title = 'AIDS and drugs'")

    def test_medical_insurance_via_rbh_link(self, browser):
        """'The system found that the database Royal Brisbane Hospital
        (which is member of the local coalition) is member of a
        coalition Medical that has a service link with another coalition
        Insurance...'"""
        result = browser.find("Medical Insurance")
        best = result.data.best()
        assert best.name == topo.MEDICAL_INSURANCE
        assert best.via == [topo.QUT, topo.RBH]
        assert best.through_link == "Medical_to_MedicalInsurance"


class TestFigure4:
    def test_display_coalitions_with_information_medical_research(
            self, browser):
        """Figure 4's query; our stand-in reports Research locally and
        Medical one hop further when swept (see EXPERIMENTS.md F4)."""
        result = browser.submit(
            "Display Coalitions With Information Medical Research")
        assert result.data.best().name == "Research"

    def test_display_instances_of_class_research(self, browser):
        result = browser.submit("Display Instances of Class Research")
        names = {d.name for d in result.data}
        assert names == {topo.QUT, topo.RMIT, topo.QLD_CANCER, topo.RBH}

    def test_documentation_formats_offered(self, browser):
        result = browser.documentation(topo.RBH)
        assert {d["format"] for d in result.data["documents"]} == \
            {"html", "text"}


class TestFigure5:
    def test_html_document_content(self, browser):
        result = browser.documentation(topo.RBH, "Research")
        html = next(d for d in result.data["documents"]
                    if d["format"] == "html")
        assert html["content"] == RBH_HTML_DOCUMENT
        assert "<h1>Royal Brisbane Hospital</h1>" in html["content"]


class TestFigure6:
    def test_select_star_from_medical_students(self, browser):
        """'the user can use SQL statement select * from medical
        students ... the query is submitted for execution by clicking
        on the Fetch button.'"""
        result = browser.fetch(topo.RBH, "SELECT * FROM MedicalStudent")
        assert result.data.columns == ["StudentId", "Name", "Course", "Year"]
        assert result.data.rowcount == 12
        assert all(len(row) == 4 for row in result.data.rows)

    def test_fetch_goes_through_wrapper_over_iiop(self, browser,
                                                  healthcare):
        system = healthcare.system
        system.reset_metrics()
        browser.fetch(topo.RBH, "SELECT COUNT(*) FROM MedicalStudent")
        assert system.metrics()["giop_messages"] >= 1


class TestWholeSessionTranscript:
    def test_session_like_section5(self, healthcare):
        """The §5 narrative as one scripted session."""
        browser = healthcare.browser(topo.QUT)
        browser.submit("Display Coalitions With Information Medical Research")
        browser.submit("Display Instances of Class Research")
        browser.submit("Display Documentation of Instance "
                       "Royal Brisbane Hospital of Class Research")
        browser.fetch(topo.RBH, "SELECT * FROM MedicalStudent")
        transcript = browser.render_transcript()
        assert transcript.count("webtassili>") == 4
        assert "MedicalStudent" in browser.session.history[-1] \
            or "medical" in browser.session.history[-1].lower()
