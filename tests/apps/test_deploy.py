"""Figure 2 fidelity: DBMS -> ORB product -> gateway bindings."""

import pytest

from repro.apps.healthcare import topology as topo


@pytest.fixture()
def deployments(healthcare):
    return {record.source_name: record
            for record in healthcare.system.deployment_map()}


class TestFigure2Bindings:
    def test_fourteen_deployments(self, deployments):
        assert len(deployments) == 14

    def test_oracle_behind_visibroker_via_jdbc(self, deployments):
        """'Oracle databases are connected to VisiBroker' (§4)."""
        for name in (topo.RBH, topo.MEDIBANK, topo.ATO, topo.MEDICARE):
            record = deployments[name]
            assert record.dbms == "Oracle"
            assert record.orb_product == "VisiBroker for Java"
            assert record.gateway == "jdbc"

    def test_msql_and_db2_behind_orbixweb_via_jdbc(self, deployments):
        """'mSQL and DB2 are connected to OrbixWeb' (§4)."""
        for name in (topo.RMIT, topo.QLD_CANCER, topo.CENTRE_LINK, topo.SGF):
            assert deployments[name].dbms == "mSQL"
            assert deployments[name].orb_product == "OrbixWeb"
            assert deployments[name].gateway == "jdbc"
        for name in (topo.MBF, topo.QUT):
            assert deployments[name].dbms.startswith("DB2")
            assert deployments[name].orb_product == "OrbixWeb"

    def test_objectstore_behind_orbix_via_cpp(self, deployments):
        """'ObjectStore databases are connected to Orbix' through C++
        method invocation (§4)."""
        for name in (topo.AMP, topo.RBH_WORKERS, topo.PRINCE_CHARLES):
            record = deployments[name]
            assert record.dbms == "ObjectStore"
            assert record.orb_product == "Orbix"
            assert record.gateway == "c++"

    def test_ontos_behind_orbixweb_via_jni(self, deployments):
        """'The Ontos database is connected to OrbixWeb' through JNI (§4)."""
        record = deployments[topo.AMBULANCE]
        assert record.dbms == "Ontos"
        assert record.orb_product == "OrbixWeb"
        assert record.gateway == "jni"

    def test_five_dbms_products(self, deployments):
        assert {record.dbms for record in deployments.values()} == \
            {"Oracle", "mSQL", "DB2 Universal Database", "ObjectStore",
             "Ontos"}

    def test_three_orb_products(self, deployments):
        assert {record.orb_product for record in deployments.values()} == \
            {"Orbix", "OrbixWeb", "VisiBroker for Java"}


class TestCrossOrbDataAccess:
    def test_every_source_reachable_over_iiop(self, healthcare):
        """Each of the 14 wrappers answers through its CORBA object."""
        for spec in topo.DATABASE_SPECS:
            isi = healthcare.system.wrapper_client(spec.name)
            assert isi.banner  # one GIOP round-trip each
            assert isi.exported_types()

    def test_relational_and_object_banners(self, healthcare):
        assert healthcare.system.wrapper_client(topo.RBH).banner == \
            "Oracle 8.0.5"
        assert healthcare.system.wrapper_client(topo.AMP).banner == \
            "ObjectStore 5.1"
        assert healthcare.system.wrapper_client(topo.AMBULANCE).banner == \
            "Ontos 3.1"

    def test_native_languages(self, healthcare):
        assert healthcare.system.wrapper_client(topo.MBF) \
            .native_language == "SQL"
        assert healthcare.system.wrapper_client(topo.AMBULANCE) \
            .native_language == "OQL"

    def test_binding_style_surfaced(self, healthcare):
        amp = healthcare.system.local_wrapper(topo.AMP)
        ambulance = healthcare.system.local_wrapper(topo.AMBULANCE)
        assert amp.describe()["binding_style"] == "c++"
        assert ambulance.describe()["binding_style"] == "jni"
