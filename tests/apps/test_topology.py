"""Figure 1 fidelity: 14 databases, 5 coalitions, 9 service links."""

import pytest

from repro.apps.healthcare import topology as topo
from repro.core.service_link import EndpointKind


class TestFigure1Counts:
    def test_headline_numbers(self):
        counts = topo.verify_figure1_counts()
        assert counts["databases"] == 14
        assert counts["coalitions"] == 5
        assert counts["service_links"] == 9
        assert counts["total_databases"] == 28  # §5: "28 databases"

    def test_all_database_names_unique(self):
        assert len(set(topo.ALL_DATABASES)) == 14

    def test_paper_named_databases_present(self):
        for name in ("State Government Funding", "Royal Brisbane Hospital",
                     "RBH Workers Union", "Centre Link", "Medibank", "MBF",
                     "RMIT Medical Research", "Queensland Cancer Fund",
                     "Australian Taxation Office", "Medicare", "QUT Research",
                     "Ambulance", "AMP", "Prince Charles Hospital"):
            assert name in topo.ALL_DATABASES

    def test_coalition_names(self):
        names = {spec.name for spec in topo.COALITION_SPECS}
        assert names == {"Research", "Medical", "Medical Insurance",
                         "Superannuation", "Medical Workers Union"}

    def test_rbh_in_two_coalitions(self):
        memberships = [spec.name for spec in topo.COALITION_SPECS
                       if topo.RBH in spec.members]
        assert memberships == ["Research", "Medical"]

    def test_every_member_is_a_known_database(self):
        for spec in topo.COALITION_SPECS:
            for member in spec.members:
                assert member in topo.ALL_DATABASES

    def test_link_labels_match_paper(self):
        from repro.core.service_link import ServiceLink
        labels = set()
        for link in topo.LINK_SPECS:
            labels.add(ServiceLink(
                from_kind=EndpointKind.parse(link.from_kind),
                from_name=link.from_name,
                to_kind=EndpointKind.parse(link.to_kind),
                to_name=link.to_name).label)
        # the links the paper names explicitly
        assert "Ambulance_to_Medical" in labels
        assert "Medical_to_MedicalInsurance" in labels
        assert "StateGovernmentFunding_to_Medicare" in labels
        assert "CentreLink_to_Medical" in labels
        assert len(labels) == 9

    def test_link_kind_mix(self):
        kinds = {"database": 0, "coalition": 0}
        for link in topo.LINK_SPECS:
            kinds[link.from_kind] += 1
        # Figure 1 has both database- and coalition-anchored links.
        assert kinds["database"] >= 5
        assert kinds["coalition"] >= 3

    def test_database_specs_cover_all(self):
        assert {spec.name for spec in topo.DATABASE_SPECS} == \
            set(topo.ALL_DATABASES)


class TestDeployedTopology:
    def test_registry_summary_matches_figure1(self, healthcare):
        summary = healthcare.system.registry.summary()
        assert summary == {"sources": 14, "coalitions": 5,
                           "service_links": 9, "memberships": 10}

    def test_coalition_membership_deployed(self, healthcare):
        registry = healthcare.system.registry
        assert set(registry.coalition("Research").members) == \
            {topo.QUT, topo.RMIT, topo.QLD_CANCER, topo.RBH}
        assert set(registry.coalition("Medical Insurance").members) == \
            {topo.MEDIBANK, topo.MBF}
        assert registry.coalition("Superannuation").members == [topo.AMP]

    def test_rbh_codatabase_knows_both_coalitions(self, healthcare):
        codb = healthcare.system.registry.codatabase(topo.RBH)
        assert codb.memberships == ["Research", "Medical"]

    def test_standalone_databases_have_empty_codbs(self, healthcare):
        """Medicare joins no coalition; it participates only via links."""
        codb = healthcare.system.registry.codatabase(topo.MEDICARE)
        assert codb.memberships == []
        assert len(codb.service_links()) == 2  # SGF and ATO links to it

    def test_rbh_codb_sees_medical_links(self, healthcare):
        codb = healthcare.system.registry.codatabase(topo.RBH)
        labels = {link.label for link in codb.service_links()}
        assert "Medical_to_MedicalInsurance" in labels
        assert "Ambulance_to_Medical" in labels
