"""Chaos acceptance: the Figure-1 federation at 20% co-database failure.

With three of the fourteen co-databases hard-dead, a deadline-bounded
discovery must still complete in budget, return every lead reachable
through healthy paths, and name each failed co-database it encountered
in the degraded report — the difference between "no answer" and "no
answer from the part of the space we could reach".
"""

import random
import time

import pytest

from repro.apps.healthcare import build_healthcare_system
from repro.apps.healthcare import topology as topo
from repro.core.resilience import (HealthBoard, ResiliencePolicy,
                                   RetryPolicy)
from repro.orb.faults import ANY, FaultyTransport
from repro.orb.transport import InMemoryNetwork

QUERY = "Medical Insurance"
DEADLINE = 5.0
GRACE = 1.0
FAILURE_COUNT = 3  # ~20% of 14 sources


def pick_dead(seed):
    """Seeded choice of failed sources (never QUT, the user's home)."""
    candidates = [name for name in topo.ALL_DATABASES if name != topo.QUT]
    return set(random.Random(seed).sample(candidates, FAILURE_COUNT))


def sweep(deployment, **kwargs):
    engine = deployment.system.query_processor().discovery
    try:
        return engine.discover(QUERY, topo.QUT, stop_at_first=False,
                               max_hops=6, **kwargs)
    finally:
        engine.close()


@pytest.fixture(scope="module")
def healthy_leads():
    """Lead name -> via path, from an unfaulted full sweep."""
    deployment = build_healthcare_system()
    result = sweep(deployment)
    return {lead.name: list(lead.via) for lead in result.leads}


@pytest.mark.chaos
@pytest.mark.parametrize("parallel", [False, True],
                         ids=["sequential", "parallel"])
def test_discovery_survives_twenty_percent_failures(
        healthy_leads, chaos_seed, parallel):
    dead = pick_dead(chaos_seed)
    faulty = FaultyTransport(InMemoryNetwork(), seed=chaos_seed)
    policy = ResiliencePolicy(
        retry=RetryPolicy(max_attempts=2, base_delay=0.001,
                          max_delay=0.01, seed=chaos_seed),
        health=HealthBoard(failure_threshold=3))
    deployment = build_healthcare_system(
        transport=faulty, resilience=policy,
        parallel_discovery=parallel, discovery_workers=6,
        isolate_sources=True)
    faulty.delay(ANY, latency=0.0005, jitter=0.0005)  # a lossy WAN
    for name in dead:
        faulty.refuse(deployment.codatabase_endpoint(name))

    started = time.monotonic()
    result = sweep(deployment, deadline=DEADLINE)
    elapsed = time.monotonic() - started

    # 1. Completes within the budget (plus collection grace).
    assert elapsed <= DEADLINE + GRACE

    # 2. Every lead whose healthy-run path avoids the dead set is
    #    still found.
    found = {lead.name for lead in result.leads}
    for lead_name, via in healthy_leads.items():
        if not (set(via) & dead):
            assert lead_name in found, \
                f"{lead_name} reachable via healthy path {via} but lost"

    # 3. The degraded report blames only dead co-databases, and names
    #    every dead one the exploration reached through a healthy path.
    blamed = set(result.degraded.names())
    assert blamed <= dead
    assert set(result.unreachable) <= blamed
    for via in healthy_leads.values():
        for index, database in enumerate(via):
            if database in dead and not (set(via[:index]) & dead):
                assert database in blamed, \
                    f"{database} was reachable (via {via[:index]}) " \
                    f"and dead, but never reported"

    # 4. The report is renderable and specific.
    summary = result.degraded.summary()
    for name in blamed:
        assert name in summary

    # 5. Faults actually fired.
    assert faulty.injected["refuse"] >= 1
    assert faulty.injected["delay"] >= 1


@pytest.mark.chaos
def test_breakers_trip_and_skip_on_repeat_queries(chaos_seed):
    """Repeated queries against the same dead sites stop burning budget:
    the shared health board trips and later sweeps skip without a call."""
    dead = pick_dead(chaos_seed)
    faulty = FaultyTransport(InMemoryNetwork(), seed=chaos_seed)
    policy = ResiliencePolicy(
        retry=RetryPolicy(max_attempts=1, base_delay=0.001, seed=chaos_seed),
        health=HealthBoard(failure_threshold=2, reset_timeout=60.0))
    deployment = build_healthcare_system(transport=faulty, resilience=policy,
                                         isolate_sources=True)
    for name in dead:
        faulty.refuse(deployment.codatabase_endpoint(name))

    results = [sweep(deployment, deadline=DEADLINE) for __ in range(3)]
    tripped = results[-1].degraded.by_reason().get("tripped", [])
    attempted = {entry for result in results
                 for entry in result.unreachable}
    # Everything that kept failing is eventually skipped unvisited.
    assert set(tripped) == attempted & dead
    snapshot = deployment.system.metrics()["resilience"]
    assert any(stats["state"] == "open" for stats in snapshot.values())
