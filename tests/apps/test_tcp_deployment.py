"""The full federation over real TCP sockets (IIOP end to end).

The same healthcare deployment, but every GIOP message crosses a
loopback socket — four ORB endpoints (three products + the system ORB),
28 servants, and the complete §2.3 walkthrough.
"""

import pytest

from repro.apps.healthcare import build_healthcare_system
from repro.apps.healthcare import topology as topo
from repro.orb.transport import TcpTransport


@pytest.fixture(scope="module")
def tcp_deployment():
    transport = TcpTransport()
    deployment = build_healthcare_system(transport=transport)
    yield deployment
    transport.close()


class TestTcpFederation:
    def test_all_endpoints_are_real_sockets(self, tcp_deployment):
        for orb in tcp_deployment.system.orbs():
            host, port = orb.endpoint
            assert host == "127.0.0.1"
            assert port > 0

    def test_discovery_over_tcp(self, tcp_deployment):
        browser = tcp_deployment.browser(topo.QUT)
        result = browser.find("Medical Insurance")
        assert result.data.best().name == topo.MEDICAL_INSURANCE

    def test_data_query_over_tcp(self, tcp_deployment):
        browser = tcp_deployment.browser(topo.QUT)
        result = browser.fetch(topo.RBH,
                               "SELECT COUNT(*) FROM MedicalStudent")
        assert result.data.scalar() == 12

    def test_function_invocation_over_tcp(self, tcp_deployment):
        browser = tcp_deployment.browser(topo.QUT)
        value = browser.invoke(topo.RBH, "ResearchProjects", "Funding",
                               "AIDS and drugs").data
        assert value == 1250000.0

    def test_bytes_actually_cross_sockets(self, tcp_deployment):
        transport = tcp_deployment.system.transport
        transport.metrics.reset()
        browser = tcp_deployment.browser(topo.QUT)
        browser.access_information(topo.RBH)
        assert transport.metrics.messages_sent >= 1
        assert transport.metrics.bytes_sent > 0
