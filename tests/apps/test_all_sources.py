"""Every deployed source answers through its full stack.

One invocation per exported function of all 14 sources, through the
CORBA wrappers — if any schema, binding, dialect, or servant is broken,
this suite finds it.
"""

import pytest

from repro.apps.healthcare import topology as topo

#: (source, type, function, args) — one call per exported function.
INVOCATIONS = [
    (topo.RBH, "ResearchProjects", "Funding", ["AIDS and drugs"]),
    (topo.RBH, "ResearchProjects", "ProjectsByKeyword", ["%medical%"]),
    (topo.RBH, "PatientHistory", "Description", ["Nobody", "1998-01-01"]),
    (topo.MEDIBANK, "Claims", "TotalClaimed", ["Nobody"]),
    (topo.MEDIBANK, "Claims", "ClaimsByStatus", ["paid"]),
    (topo.MBF, "Cover", "PlanPremium", ["Hospital Plus"]),
    (topo.ATO, "MedicareLevy", "LevyForYear", [1997]),
    (topo.MEDICARE, "Benefits", "BenefitTotal", ["GP001"]),
    (topo.RMIT, "Projects", "GrantAmount", ["Telehealth"]),
    (topo.RMIT, "Projects", "ProjectsInArea", ["oncology"]),
    (topo.QLD_CANCER, "Trials", "TrialFunding", ["Trial QC-001"]),
    (topo.CENTRE_LINK, "Payments", "TotalPaid", ["carer"]),
    (topo.SGF, "Funding", "ProgramBudget", ["Rural Clinics"]),
    (topo.QUT, "Surveys", "SurveyLead", ["Health in Queensland"]),
    (topo.AMP, "Superannuation", "MemberBalance", ["Nobody"]),
    (topo.AMP, "Superannuation", "FundsByCategory", ["growth"]),
    (topo.RBH_WORKERS, "UnionMembers", "MembersInRole", ["nurse"]),
    (topo.PRINCE_CHARLES, "CardiacCare", "PatientsInWard", ["Cardiac A"]),
    (topo.AMBULANCE, "Callouts", "CalloutsTo", [topo.RBH]),
]


class TestAllSources:
    @pytest.mark.parametrize("source,type_name,function,args", INVOCATIONS,
                             ids=[f"{s}:{f}" for s, __, f, __a in INVOCATIONS])
    def test_every_exported_function_invocable(self, healthcare, source,
                                               type_name, function, args):
        isi = healthcare.system.wrapper_client(source)
        isi.invoke(type_name, function, args)  # must not raise

    def test_every_function_covered(self, healthcare):
        """The table above covers every exported function of every source
        (so new exports cannot silently go untested)."""
        covered = {(source, type_name, function)
                   for source, type_name, function, __ in INVOCATIONS}
        expected = set()
        for spec in topo.DATABASE_SPECS:
            wrapper = healthcare.system.local_wrapper(spec.name)
            for exported in wrapper.exported_types():
                for fn in exported.functions:
                    expected.add((spec.name, exported.name, fn.name))
        assert covered == expected

    @pytest.mark.parametrize("spec", topo.DATABASE_SPECS,
                             ids=[s.name for s in topo.DATABASE_SPECS])
    def test_native_query_per_source(self, healthcare, spec):
        """Native passthrough works against every source."""
        isi = healthcare.system.wrapper_client(spec.name)
        if isi.native_language == "SQL":
            table = healthcare.relational[spec.name].table_names()[0]
            result = isi.execute_native(f"SELECT COUNT(*) FROM {table}")
            assert result.scalar() >= 0
        else:
            database = healthcare.objects[spec.name]
            class_name = database.schema.class_names()[0]
            rows = isi.execute_native(
                f"SELECT COUNT(*) FROM {class_name}")
            assert rows[0]["count"] >= 0

    @pytest.mark.parametrize("spec", topo.DATABASE_SPECS,
                             ids=[s.name for s in topo.DATABASE_SPECS])
    def test_every_source_has_data(self, healthcare, spec):
        """Seeded population actually put rows/objects everywhere."""
        if spec.name in healthcare.relational:
            database = healthcare.relational[spec.name]
            total = sum(database.row_count(t)
                        for t in database.table_names())
            assert total > 0
        else:
            assert len(healthcare.objects[spec.name]) > 0
