"""S10 chaos: quorum writes under network partitions (docs/quorum.md).

The acceptance story of the quorum layer, run at the application level
over the full healthcare federation:

* **partition-during-write** — cutting any *minority* of a co-database's
  replica set (including the current lease holder) away from the rest
  must leave every maintenance write available: the facade waits out
  the old lease, elects a primary on the majority side at a higher
  fence, and commits there.  Completeness 1.00.
* **dual-primary candidate** — a deposed primary that still believes
  its lease is valid (clock skew: exactly what a partitioned node
  experiences) can never commit: the majority's newer promises fence
  it out, and its aborted write leaves no journal trace anywhere.
* **zero split-brain** — after healing and anti-entropy, every
  replica's journal is a strict prefix of the leader's; no replica
  ever holds a committed write the quorum side does not.

CI's tier-2 quorum job sweeps CHAOS_SEED over {7, 23, 1999} and
crosses replicas {3, 5} with the threaded / event-loop transports
(REPRO_TRANSPORT_LOOP).
"""

import time

import pytest

from repro.apps.healthcare import build_healthcare_system
from repro.apps.healthcare import topology as topo
from repro.core.quorum import PrimaryLease, majority
from repro.errors import FencedOut, LeaseExpired, QuorumError
from repro.orb.faults import FaultyTransport
from repro.orb.transport import InMemoryNetwork

TARGET = topo.RBH
LEASE = 0.05  # short enough that failover waits are test-friendly
WRITES = 5


def build_quorum(seed, replicas, transport=None):
    faulty = FaultyTransport(transport or InMemoryNetwork(), seed=seed)
    deployment = build_healthcare_system(
        transport=faulty, replication_factor=replicas, quorum=True,
        lease_duration=LEASE)
    return faulty, deployment


def partition_minority(faulty, deployment, replicas):
    """Cut a lease-holder-containing minority off from the rest."""
    endpoints = [deployment.codatabase_replica_endpoint(TARGET, index)
                 for index in range(replicas)]
    minority_size = replicas - majority(replicas)
    minority = set(endpoints[:minority_size])
    rest = set(endpoints[minority_size:])
    faulty.partition(minority, rest)
    return minority_size


def journals_prefix_consistent(facade):
    """No split-brain: every replica's log is a prefix of the leader's."""
    leader = max(facade.runtimes, key=lambda runtime: runtime.epoch)
    reference = leader.journal.entries()
    for runtime in facade.runtimes:
        entries = runtime.journal.entries()
        if entries != reference[:len(entries)]:
            return False
    return True


@pytest.mark.chaos
@pytest.mark.parametrize("replicas", [3, 5], ids=["replicas3", "replicas5"])
def test_writes_survive_minority_partition(chaos_seed, replicas):
    faulty, deployment = build_quorum(chaos_seed, replicas)
    system = deployment.system
    facade = system._facade(TARGET)
    baseline_epoch = facade.epoch
    holder = facade.lease_status()["holder"]
    assert holder == "r0"  # deployment writes elected the first replica

    minority_size = partition_minority(faulty, deployment, replicas)
    committed = 0
    for index in range(WRITES):
        system.attach_document(TARGET, "text", f"partition doc {index}")
        committed += 1
    assert committed == WRITES  # completeness 1.00 under minority loss

    status = facade.lease_status()
    assert int(status["holder"][1:]) >= minority_size  # majority side
    assert status["fence"] >= 2
    assert facade.aborted_writes >= 1  # the failover write aborted once
    assert faulty.injected["partition"] > 0  # the cut actually fired
    # The minority missed every commit; nobody diverged.
    for runtime in facade.runtimes[:minority_size]:
        assert runtime.epoch == baseline_epoch
    assert journals_prefix_consistent(facade)

    faulty.heal()
    healed = system.reconcile_replicas(TARGET)
    assert healed == minority_size
    assert {runtime.epoch for runtime in facade.runtimes} == {facade.epoch}
    for runtime in facade.runtimes:
        texts = [doc["content"] for doc
                 in runtime.codatabase.documents_of(TARGET)]
        for index in range(WRITES):
            assert f"partition doc {index}" in texts


@pytest.mark.chaos
@pytest.mark.parametrize("replicas", [3, 5], ids=["replicas3", "replicas5"])
def test_dual_primary_candidate_never_commits(chaos_seed, replicas):
    faulty, deployment = build_quorum(chaos_seed, replicas)
    system = deployment.system
    facade = system._facade(TARGET)
    old = facade._lease
    assert old is not None and old.index == 0

    minority_size = partition_minority(faulty, deployment, replicas)
    system.attach_document(TARGET, "text", "majority-side write")
    fresh = facade._lease
    assert fresh.fence > old.fence and fresh.index >= minority_size

    # The deposed r0, by its own (skewed) clock, still holds fence 1 —
    # the dual-primary moment.  Its write must be fenced, commit
    # nothing, and leave no journal trace on any replica.
    skewed = PrimaryLease(index=old.index, fence=old.fence,
                          expires_at=time.monotonic() + 60.0,
                          grants=old.grants)
    epochs = [runtime.epoch for runtime in facade.runtimes]
    lengths = [len(runtime.journal) for runtime in facade.runtimes]
    with pytest.raises((FencedOut, QuorumError)):
        facade.write_as(skewed, "attach_document", TARGET, "text",
                        "split-brain write", "")
    assert [runtime.epoch for runtime in facade.runtimes] == epochs
    assert [len(runtime.journal) for runtime in facade.runtimes] == lengths
    for runtime in facade.runtimes:
        contents = [doc["content"] for doc
                    in runtime.codatabase.documents_of(TARGET)]
        assert "split-brain write" not in contents
    assert journals_prefix_consistent(facade)

    faulty.heal()
    system.reconcile_replicas(TARGET)
    assert {runtime.epoch for runtime in facade.runtimes} == {facade.epoch}


@pytest.mark.chaos
@pytest.mark.parametrize("replicas", [3, 5], ids=["replicas3", "replicas5"])
def test_majority_partition_blocks_writes_without_divergence(chaos_seed,
                                                             replicas):
    """With a *majority* cut away from the primary (and the in-process
    facade), no candidate the facade can use wins an election — the
    write fails cleanly rather than committing on a minority."""
    faulty, deployment = build_quorum(chaos_seed, replicas)
    system = deployment.system
    facade = system._facade(TARGET)
    endpoints = [deployment.codatabase_replica_endpoint(TARGET, index)
                 for index in range(replicas)]
    # Strand the holder on the minority side of the cut, and mark the
    # majority side dead to the facade (it cannot reach around a real
    # partition: the facade shares the primary's side of the cut).
    stranded = replicas - majority(replicas)
    faulty.partition(set(endpoints[:stranded]), set(endpoints[stranded:]))
    for index in range(stranded, replicas):
        facade.mark_dead(index)
    epoch = facade.epoch
    with pytest.raises(QuorumError):
        system.attach_document(TARGET, "text", "minority write")
    assert facade.epoch == epoch
    assert journals_prefix_consistent(facade)
    for runtime in facade.runtimes:
        contents = [doc["content"] for doc
                    in runtime.codatabase.documents_of(TARGET)]
        assert "minority write" not in contents


@pytest.mark.chaos
def test_partition_window_heals_after_scripted_probes(chaos_seed):
    """after/until windows compose with partitions: a cut bounded with
    ``until=`` lifts itself once the link's check counter passes it."""
    replicas = 3
    faulty, deployment = build_quorum(chaos_seed, replicas)
    system = deployment.system
    facade = system._facade(TARGET)
    endpoints = [deployment.codatabase_replica_endpoint(TARGET, index)
                 for index in range(replicas)]
    # Sever r0 from its peers for the next few link probes only.  The
    # write's own quorum checks and election retries consume probes, so
    # the cut lifts itself mid-flight — the write must commit either
    # way (failover to a peer, or r0 re-winning once reconnected).
    faulty.partition({endpoints[0]}, set(endpoints[1:]), until=4)
    system.attach_document(TARGET, "text", "during the window")
    assert faulty.injected["partition"] > 0  # the window did fire
    # Bounded probing: the counter passes ``until`` and the link heals.
    for _ in range(8):
        if not faulty.severed(endpoints[0], endpoints[1]):
            break
    assert not faulty.severed(endpoints[0], endpoints[1])
    system.attach_document(TARGET, "text", "after the window")
    system.reconcile_replicas(TARGET)
    assert {runtime.epoch for runtime in facade.runtimes} == {facade.epoch}
    for runtime in facade.runtimes:
        contents = [doc["content"] for doc
                    in runtime.codatabase.documents_of(TARGET)]
        assert "during the window" in contents
        assert "after the window" in contents


@pytest.mark.chaos
def test_quorum_over_tcp_transport_replicas3(chaos_seed):
    """The same failover cycle over the real TCP transport — threaded
    or event-loop per REPRO_TRANSPORT_LOOP, as CI's matrix sets it."""
    from repro.orb.transport import TcpTransport
    tcp = TcpTransport()
    try:
        faulty, deployment = build_quorum(chaos_seed, 3, transport=tcp)
        system = deployment.system
        facade = system._facade(TARGET)
        partition_minority(faulty, deployment, 3)
        system.attach_document(TARGET, "text", "tcp quorum write")
        assert facade.lease_status()["holder"] != "r0"
        faulty.heal()
        assert system.reconcile_replicas(TARGET) == 1
        assert {runtime.epoch for runtime in facade.runtimes} \
            == {facade.epoch}
        assert journals_prefix_consistent(facade)
    finally:
        tcp.close()
